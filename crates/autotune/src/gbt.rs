//! Gradient-boosted regression trees, from scratch — the XGBoost stand-in
//! behind the auto-tuning engine's cost model (paper §6.1: "We use XGBoost
//! method to train a gradient tree boosting model as the cost model").
//!
//! Squared-error boosting: each round fits a depth-limited CART regression
//! tree to the current residuals and adds it with a learning-rate shrink.
//! Splits minimise within-leaf variance via exact search over sorted
//! feature values. Row subsampling (stochastic gradient boosting) is
//! supported. Data sizes in the tuner are hundreds of rows, so the exact
//! method is plenty fast.
//!
//! ## Parallelism and determinism
//!
//! Boosting rounds are inherently serial (each tree fits the previous
//! round's residuals), but *within* a round the fitted tree's
//! predictions over all training rows fan out on rayon, as do the
//! per-row predictions of [`Gbrt::predict_batch`] and [`Gbrt::rmse`].
//! Per-tree prediction of a *single* row parallelises only past
//! [`PAR_PREDICT_MIN_TREES`]: one tree costs nanoseconds, so small
//! ensembles (the tuner's default is 60 trees) stay serial rather than
//! paying thread fan-out on every cost-model query. Every parallel path
//! is an order-preserving map reduced serially in index order, so
//! results are bit-for-bit identical to the serial computation.

use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

/// Ensemble size above which [`Gbrt::predict`] fans the per-tree sum out
/// on rayon (below it, thread spawn dwarfs the ~ns per-tree walk).
pub const PAR_PREDICT_MIN_TREES: usize = 512;

/// Per-worker row count below which batched per-row maps stay serial.
/// One row costs well under a microsecond (a depth-≤5 walk per tree),
/// while the pool-less rayon shim pays ~10 µs per spawned thread — so
/// the tuner's usual few-hundred-row histories run inline and only
/// genuinely large datasets fan out.
pub const PAR_MIN_ROWS: usize = 512;

/// A single regression-tree node (arena-allocated inside [`Tree`]).
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `< threshold` child.
        left: usize,
        /// Arena index of the `>= threshold` child.
        right: usize,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 5, min_samples_leaf: 2 }
    }
}

impl Tree {
    /// Fits a tree to `(rows, targets)` restricted to `index` (row ids).
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], index: &[usize], params: TreeParams) -> Tree {
        assert_eq!(rows.len(), targets.len());
        assert!(!index.is_empty(), "cannot fit on an empty sample");
        let mut tree = Tree { nodes: Vec::new() };
        let mut idx = index.to_vec();
        tree.grow(rows, targets, &mut idx, params.max_depth, params);
        tree
    }

    fn grow(
        &mut self,
        rows: &[Vec<f64>],
        targets: &[f64],
        index: &mut [usize],
        depth: usize,
        params: TreeParams,
    ) -> usize {
        let mean = index.iter().map(|&i| targets[i]).sum::<f64>() / index.len() as f64;
        if depth == 0 || index.len() < 2 * params.min_samples_leaf {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { value: mean });
            return id;
        }
        match best_split(rows, targets, index, params.min_samples_leaf) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean });
                id
            }
            Some((feature, threshold)) => {
                // Partition the index in place.
                let mid = partition(rows, index, feature, threshold);
                // Reserve our slot before growing children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let (left_idx, right_idx) = index.split_at_mut(mid);
                let left = self.grow(rows, targets, left_idx, depth - 1, params);
                let right = self.grow(rows, targets, right_idx, depth - 1, params);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }

    /// Predicts one row. The root is node 0.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a bare stump.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Finds the variance-minimising `(feature, threshold)` split, or `None`
/// when no split improves on the parent (constant targets / too few rows).
fn best_split(
    rows: &[Vec<f64>],
    targets: &[f64],
    index: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = index.len();
    let num_features = rows[index[0]].len();
    let total_sum: f64 = index.iter().map(|&i| targets[i]).sum();
    let total_sq: f64 = index.iter().map(|&i| targets[i] * targets[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;
    if parent_sse <= 1e-12 {
        return None;
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order: Vec<usize> = index.to_vec();
    for f in 0..num_features {
        order.sort_by(|&a, &b| rows[a][f].total_cmp(&rows[b][f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(n - 1) {
            left_sum += targets[i];
            left_sq += targets[i] * targets[i];
            let left_n = k + 1;
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            let v_here = rows[i][f];
            let v_next = rows[order[k + 1]][f];
            if v_next <= v_here {
                continue; // no threshold separates equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / left_n as f64)
                + (right_sq - right_sum * right_sum / right_n as f64);
            if best.as_ref().is_none_or(|&(_, _, b)| sse < b) {
                best = Some((f, (v_here + v_next) / 2.0, sse));
            }
        }
    }
    best.filter(|&(_, _, sse)| sse < parent_sse - 1e-12).map(|(f, t, _)| (f, t))
}

/// Partitions `index` so rows with `row[feature] < threshold` come first;
/// returns the boundary.
fn partition(rows: &[Vec<f64>], index: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut mid = 0;
    for k in 0..index.len() {
        if rows[index[k]][feature] < threshold {
            index.swap(mid, k);
            mid += 1;
        }
    }
    mid
}

/// Gradient-boosted tree ensemble with squared loss.
#[derive(Debug, Clone)]
pub struct Gbrt {
    base: f64,
    trees: Vec<Tree>,
    learning_rate: f64,
}

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbrtParams {
    pub n_trees: usize,
    pub learning_rate: f64,
    pub tree: TreeParams,
    /// Row-subsampling fraction per round (stochastic boosting).
    pub subsample: f64,
}

impl Default for GbrtParams {
    fn default() -> Self {
        Self { n_trees: 60, learning_rate: 0.15, tree: TreeParams::default(), subsample: 0.85 }
    }
}

impl Gbrt {
    /// Fits the ensemble. Requires at least one row.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], params: GbrtParams, rng: &mut impl Rng) -> Gbrt {
        assert_eq!(rows.len(), targets.len());
        assert!(!rows.is_empty(), "cannot fit on an empty dataset");
        let n = rows.len();
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut preds = vec![base; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let all: Vec<usize> = (0..n).collect();
        let sub = ((n as f64 * params.subsample).ceil() as usize).clamp(1, n);
        for _ in 0..params.n_trees {
            let residuals: Vec<f64> = targets.iter().zip(&preds).map(|(t, p)| t - p).collect();
            let index: Vec<usize> = if sub == n {
                all.clone()
            } else {
                let mut shuffled = all.clone();
                shuffled.shuffle(rng);
                shuffled.truncate(sub);
                shuffled
            };
            let tree = Tree::fit(rows, &residuals, &index, params.tree);
            // The fitted tree's predictions over the whole dataset are a
            // pure per-row map: fan out (past the serial grain), then
            // apply in row order.
            let deltas: Vec<f64> =
                rows.par_iter().with_min_len(PAR_MIN_ROWS).map(|row| tree.predict(row)).collect();
            for (p, d) in preds.iter_mut().zip(deltas) {
                *p += params.learning_rate * d;
            }
            trees.push(tree);
        }
        Gbrt { base, trees, learning_rate: params.learning_rate }
    }

    /// Predicts one row.
    ///
    /// Large ensembles (>= [`PAR_PREDICT_MIN_TREES`]) sum their per-tree
    /// contributions on rayon workers; the partial sums are collected in
    /// tree order and reduced serially, so the result is bit-identical
    /// to the serial sum for any thread count.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let tree_sum = if self.trees.len() >= PAR_PREDICT_MIN_TREES {
            self.trees
                .par_iter()
                .map(|t| t.predict(row))
                .collect::<Vec<f64>>()
                .into_iter()
                .sum::<f64>()
        } else {
            self.tree_sum_serial(row)
        };
        self.base + self.learning_rate * tree_sum
    }

    /// Serial ensemble walk for one row — the reduction both prediction
    /// paths must agree with bitwise.
    fn tree_sum_serial(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicts many rows at once, fanning the rows out on rayon past
    /// [`PAR_MIN_ROWS`].
    ///
    /// This is the grain the tuner's batched paths should use: one row's
    /// ensemble walk is too cheap to parallelise, a batch is not. Each
    /// row uses the serial tree sum so a large ensemble cannot nest a
    /// second per-tree fan-out inside the per-row one.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.par_iter()
            .with_min_len(PAR_MIN_ROWS)
            .map(|row| self.base + self.learning_rate * self.tree_sum_serial(row))
            .collect()
    }

    /// Root-mean-square error over a dataset.
    pub fn rmse(&self, rows: &[Vec<f64>], targets: &[f64]) -> f64 {
        let preds = self.predict_batch(rows);
        let se: f64 = preds
            .iter()
            .zip(targets)
            .map(|(p, t)| {
                let d = p - t;
                d * d
            })
            .sum();
        (se / rows.len() as f64).sqrt()
    }

    /// Number of boosted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble has no trees (prediction = base mean).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Permutation feature importance: the RMSE increase when feature
    /// `f`'s column is shuffled (Breiman). Returns one non-negative score
    /// per feature; larger = the model leans on it harder. Diagnostics for
    /// "what did the cost model learn?" — the tuner itself never needs it.
    pub fn permutation_importance(
        &self,
        rows: &[Vec<f64>],
        targets: &[f64],
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        assert!(!rows.is_empty());
        let base = self.rmse(rows, targets);
        let num_features = rows[0].len();
        let n = rows.len();
        let mut scores = Vec::with_capacity(num_features);
        let mut scratch: Vec<Vec<f64>> = rows.to_vec();
        for f in 0..num_features {
            // Shuffle column f in the scratch copy.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(rng);
            for (i, &src) in perm.iter().enumerate() {
                scratch[i][f] = rows[src][f];
            }
            let shuffled = self.rmse(&scratch, targets);
            scores.push((shuffled - base).max(0.0));
            // Restore the column.
            for (i, row) in rows.iter().enumerate() {
                scratch[i][f] = row[f];
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn single_tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let idx: Vec<usize> = (0..20).collect();
        let tree =
            Tree::fit(&rows, &targets, &idx, TreeParams { max_depth: 2, min_samples_leaf: 1 });
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn constant_targets_give_stump() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets = vec![2.5; 10];
        let idx: Vec<usize> = (0..10).collect();
        let tree = Tree::fit(&rows, &targets, &idx, TreeParams::default());
        assert_eq!(tree.len(), 1);
        assert!((tree.predict(&[100.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn boosting_reduces_training_error() {
        // y = x0^2 + 3 x1 with noise-free data.
        let mut r = rng();
        let rows: Vec<Vec<f64>> =
            (0..200).map(|_| vec![r.gen_range(-2.0..2.0), r.gen_range(-1.0..1.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|v| v[0] * v[0] + 3.0 * v[1]).collect();
        let short = Gbrt::fit(
            &rows,
            &targets,
            GbrtParams { n_trees: 5, ..GbrtParams::default() },
            &mut rng(),
        );
        let long = Gbrt::fit(
            &rows,
            &targets,
            GbrtParams { n_trees: 80, ..GbrtParams::default() },
            &mut rng(),
        );
        let e_short = short.rmse(&rows, &targets);
        let e_long = long.rmse(&rows, &targets);
        assert!(e_long < e_short, "80 trees {e_long} !< 5 trees {e_short}");
        assert!(e_long < 0.3, "training rmse too high: {e_long}");
    }

    #[test]
    fn generalises_on_smooth_function() {
        let mut r = rng();
        let make = |r: &mut StdRng, n: usize| -> (Vec<Vec<f64>>, Vec<f64>) {
            let rows: Vec<Vec<f64>> =
                (0..n).map(|_| vec![r.gen_range(0.0..4.0), r.gen_range(0.0..4.0)]).collect();
            let y = rows.iter().map(|v| (v[0] - 2.0).abs() + 0.5 * v[1]).collect();
            (rows, y)
        };
        let (train_x, train_y) = make(&mut r, 400);
        let (test_x, test_y) = make(&mut r, 100);
        let model = Gbrt::fit(&train_x, &train_y, GbrtParams::default(), &mut rng());
        let err = model.rmse(&test_x, &test_y);
        assert!(err < 0.4, "test rmse {err}");
    }

    #[test]
    fn ranks_monotone_function_correctly() {
        // What the tuner actually needs: ranking, not calibration.
        let rows: Vec<Vec<f64>> = (1..=50).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|v| v[0].powf(1.5)).collect();
        let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng());
        let lo = model.predict(&[5.0, 3.0]);
        let hi = model.predict(&[45.0, 3.0]);
        assert!(hi > lo * 2.0, "hi {hi} lo {lo}");
    }

    #[test]
    fn single_row_dataset() {
        let model = Gbrt::fit(&[vec![1.0, 2.0]], &[7.0], GbrtParams::default(), &mut rng());
        assert!((model.predict(&[1.0, 2.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn predict_is_deterministic() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..30).map(|i| (i * i) as f64).collect();
        let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng());
        let a = model.predict(&[13.0]);
        let b = model.predict(&[13.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_importance_identifies_the_informative_feature() {
        let mut r = rng();
        // y depends on feature 0 only; feature 1 is noise.
        let rows: Vec<Vec<f64>> =
            (0..150).map(|_| vec![r.gen_range(-2.0..2.0), r.gen_range(-2.0..2.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|v| 3.0 * v[0]).collect();
        let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng());
        let imp = model.permutation_importance(&rows, &targets, &mut rng());
        assert_eq!(imp.len(), 2);
        assert!(
            imp[0] > 5.0 * imp[1].max(1e-6),
            "importance did not separate signal from noise: {imp:?}"
        );
    }

    #[test]
    fn parallel_predict_is_bit_identical_to_serial() {
        // Past PAR_PREDICT_MIN_TREES the ensemble sum fans out on rayon;
        // the chunked reduction must reproduce the serial sum exactly.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|v| v[0] * 1.7 - v[1]).collect();
        let model = Gbrt::fit(
            &rows,
            &targets,
            GbrtParams { n_trees: PAR_PREDICT_MIN_TREES + 16, ..GbrtParams::default() },
            &mut rng(),
        );
        assert!(model.len() >= PAR_PREDICT_MIN_TREES);
        for probe in &rows {
            let serial = model.base
                + model.learning_rate * model.trees.iter().map(|t| t.predict(probe)).sum::<f64>();
            assert_eq!(model.predict(probe).to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn predict_batch_matches_per_row_predict() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..64).map(|i| (i * 3) as f64).collect();
        let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng());
        let batch = model.predict_batch(&rows);
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(got.to_bits(), model.predict(row).to_bits());
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        // With min 5 per leaf and 8 rows, only one split is possible at
        // most; depth stays shallow.
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..8).collect();
        let tree =
            Tree::fit(&rows, &targets, &idx, TreeParams { max_depth: 10, min_samples_leaf: 5 });
        assert!(tree.len() <= 3, "tree has {} nodes", tree.len());
    }
}
