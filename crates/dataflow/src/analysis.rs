//! Optimality analysis: how close a schedule's measured traffic sits to the
//! theoretical lower bound.

use crate::config::ScheduleConfig;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_core::Algorithm;

/// Comparison of a schedule against the theory.
#[derive(Debug, Clone)]
pub struct OptimalityReport {
    /// The algorithm analysed.
    pub algorithm: Algorithm,
    /// Exact useful-element I/O of the lowered schedule.
    pub q_schedule: f64,
    /// The paper's analytic dataflow model (Eq. 20/22 + stores).
    pub q_model: f64,
    /// I/O lower bound at `S = S_b` elements (per-block fast memory, the
    /// red-blue `S` of one processor).
    pub q_lower: f64,
    /// `q_schedule / q_lower` — the near-optimality factor.
    pub ratio: f64,
    /// Relative deviation from the optimality condition `xy = Rz`.
    pub condition_deviation: f64,
}

/// Analyses a direct-dataflow configuration.
pub fn analyze_direct(shape: &ConvShape, cfg: &ScheduleConfig) -> OptimalityReport {
    let q_schedule = crate::direct::exact_io_elems(shape, cfg) as f64;
    let q_model = crate::direct::analytic_io_elems(shape, cfg);
    let q_lower = iolb_core::direct::io_lower_bound(shape, cfg.sb_elems());
    OptimalityReport {
        algorithm: Algorithm::Direct,
        q_schedule,
        q_model,
        q_lower,
        ratio: q_schedule / q_lower.max(1.0),
        condition_deviation: iolb_core::direct::optimality_deviation(
            shape,
            cfg.x as f64,
            cfg.y as f64,
            cfg.z as f64,
        ),
    }
}

/// Analyses a Winograd-dataflow configuration.
pub fn analyze_winograd(
    shape: &ConvShape,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
) -> OptimalityReport {
    let q_schedule = crate::winograd::exact_io_elems(shape, tile, cfg) as f64;
    let q_model = crate::winograd::analytic_io_elems(shape, tile, cfg);
    let q_lower = iolb_core::winograd::io_lower_bound(shape, tile, cfg.sb_elems());
    OptimalityReport {
        algorithm: Algorithm::Winograd(tile),
        q_schedule,
        q_model,
        q_lower,
        ratio: q_schedule / q_lower.max(1.0),
        condition_deviation: iolb_core::winograd::optimality_deviation(
            tile,
            cfg.x as f64,
            cfg.y as f64,
            cfg.z as f64,
        ),
    }
}

impl std::fmt::Display for OptimalityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: Q = {:.3e} (model {:.3e}, bound {:.3e}, ratio {:.2}x, condition dev {:.1}%)",
            self.algorithm,
            self.q_schedule,
            self.q_model,
            self.q_lower,
            self.ratio,
            self.condition_deviation * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_tensor::layout::Layout;

    fn shape() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 14,
            y: 14,
            z: 16,
            nxt: 7,
            nyt: 7,
            nzt: 4,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn schedule_never_beats_bound() {
        let r = analyze_direct(&shape(), &cfg());
        assert!(r.ratio >= 1.0, "ratio {}", r.ratio);
        assert!(r.q_schedule >= r.q_model * 0.99);
    }

    #[test]
    fn near_optimal_config_has_small_ratio() {
        let r = analyze_direct(&shape(), &cfg());
        // The paper's near-optimality: a small constant factor. The
        // theoretical constant between Eq. 21 and Thm 4.12 is ~8*sqrt(2),
        // and the integer tile + halo add ~2x; anything below ~32 is
        // "near-optimal" in the paper's sense, and the test pins it.
        assert!(r.ratio < 32.0, "ratio {}", r.ratio);
        assert!(r.condition_deviation < 0.5);
    }

    #[test]
    fn skewed_config_ranks_worse() {
        let good = analyze_direct(&shape(), &cfg());
        let skew = ScheduleConfig { x: 2, y: 2, z: 128, nxt: 1, nyt: 1, nzt: 32, ..cfg() };
        let bad = analyze_direct(&shape(), &skew);
        assert!(bad.q_schedule > good.q_schedule);
        assert!(bad.condition_deviation > good.condition_deviation);
    }

    #[test]
    fn winograd_report_consistent() {
        let c = ScheduleConfig { x: 8, y: 8, z: 8, nxt: 4, nyt: 4, nzt: 4, ..cfg() };
        let r = analyze_winograd(&shape(), WinogradTile::F2X3, &c);
        assert!(r.ratio >= 1.0);
        assert!(format!("{r}").contains("winograd"));
    }
}
