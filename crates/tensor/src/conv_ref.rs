//! Golden-reference direct convolution (paper §2.2).
//!
//! A deliberately simple seven-loop implementation used as the correctness
//! oracle for every other convolution path (im2col, Winograd, and the tiled
//! dataflow executor). Clarity over speed; the fast paths live elsewhere.

use crate::tensor::Tensor4;

/// Convolution hyper-parameters shared by all implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Stride `mu` (both spatial dims).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvParams {
    pub fn new(stride: usize, pad: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self { stride, pad }
    }

    /// Unit stride, no padding.
    pub fn unit() -> Self {
        Self { stride: 1, pad: 0 }
    }

    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, in_extent: usize, k: usize) -> usize {
        (in_extent + 2 * self.pad - k) / self.stride + 1
    }
}

/// Direct convolution: `output[n][co][oh][ow] = sum_{ci,kh,kw}
/// input[n][ci][oh*s - p + kh][ow*s - p + kw] * weights[co][ci][kh][kw]`.
///
/// `weights` uses `n = C_out`. Panics on inconsistent shapes.
pub fn conv2d_reference(input: &Tensor4, weights: &Tensor4, params: ConvParams) -> Tensor4 {
    assert_eq!(input.c, weights.c, "C_in mismatch between input and weights");
    let (kh, kw) = (weights.h, weights.w);
    let oh = params.out_extent(input.h, kh);
    let ow = params.out_extent(input.w, kw);
    let mut out = Tensor4::zeros(input.n, weights.n, oh, ow);

    for n in 0..input.n {
        for co in 0..weights.n {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..input.c {
                        for dy in 0..kh {
                            for dx in 0..kw {
                                let iy = (y * params.stride + dy) as isize - params.pad as isize;
                                let ix = (x * params.stride + dx) as isize - params.pad as isize;
                                acc += input.at_padded(n, ci, iy, ix) * weights.at(co, ci, dy, dx);
                            }
                        }
                    }
                    *out.at_mut(n, co, y, x) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1 on a single channel is the identity.
        let input = Tensor4::from_fn(1, 1, 3, 3, |_, _, h, w| (h * 3 + w) as f32);
        let mut weights = Tensor4::zeros(1, 1, 1, 1);
        *weights.at_mut(0, 0, 0, 0) = 1.0;
        let out = conv2d_reference(&input, &weights, ConvParams::unit());
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn hand_computed_2x2_kernel() {
        // input 1x1x3x3 = [[1,2,3],[4,5,6],[7,8,9]], kernel [[1,0],[0,1]]
        // valid conv -> [[1+5, 2+6], [4+8, 5+9]].
        let input = Tensor4::from_fn(1, 1, 3, 3, |_, _, h, w| (h * 3 + w + 1) as f32);
        let mut weights = Tensor4::zeros(1, 1, 2, 2);
        *weights.at_mut(0, 0, 0, 0) = 1.0;
        *weights.at_mut(0, 0, 1, 1) = 1.0;
        let out = conv2d_reference(&input, &weights, ConvParams::unit());
        assert_eq!(out.h, 2);
        assert_eq!(out.w, 2);
        assert_eq!(out.at(0, 0, 0, 0), 6.0);
        assert_eq!(out.at(0, 0, 0, 1), 8.0);
        assert_eq!(out.at(0, 0, 1, 0), 12.0);
        assert_eq!(out.at(0, 0, 1, 1), 14.0);
    }

    #[test]
    fn padding_adds_zero_border() {
        // All-ones 3x3 input, all-ones 3x3 kernel, pad 1: centre output is
        // 9, corner outputs see only 4 contributing inputs.
        let input = Tensor4::from_fn(1, 1, 3, 3, |_, _, _, _| 1.0);
        let weights = Tensor4::from_fn(1, 1, 3, 3, |_, _, _, _| 1.0);
        let out = conv2d_reference(&input, &weights, ConvParams::new(1, 1));
        assert_eq!(out.h, 3);
        assert_eq!(out.at(0, 0, 1, 1), 9.0);
        assert_eq!(out.at(0, 0, 0, 0), 4.0);
        assert_eq!(out.at(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn stride_subsamples_outputs() {
        let input = Tensor4::from_fn(1, 1, 5, 5, |_, _, h, w| (h * 5 + w) as f32);
        let mut weights = Tensor4::zeros(1, 1, 1, 1);
        *weights.at_mut(0, 0, 0, 0) = 1.0;
        let out = conv2d_reference(&input, &weights, ConvParams::new(2, 0));
        assert_eq!((out.h, out.w), (3, 3));
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
        assert_eq!(out.at(0, 0, 1, 1), 12.0);
        assert_eq!(out.at(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn channels_accumulate() {
        // Two input channels, each contributing 1 via a 1x1 kernel.
        let input = Tensor4::from_fn(1, 2, 2, 2, |_, c, _, _| (c + 1) as f32);
        let weights = Tensor4::from_fn(1, 2, 1, 1, |_, _, _, _| 1.0);
        let out = conv2d_reference(&input, &weights, ConvParams::unit());
        assert_eq!(out.at(0, 0, 0, 0), 3.0);
    }

    #[test]
    fn multiple_kernels_produce_independent_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor4::random(1, 3, 4, 4, &mut rng);
        let weights = Tensor4::random(2, 3, 3, 3, &mut rng);
        let both = conv2d_reference(&input, &weights, ConvParams::unit());
        // Convolving with each kernel alone must reproduce each channel.
        for co in 0..2 {
            let single = Tensor4::from_fn(1, 3, 3, 3, |_, c, h, w| weights.at(co, c, h, w));
            let out = conv2d_reference(&input, &single, ConvParams::unit());
            for y in 0..both.h {
                for x in 0..both.w {
                    assert_eq!(out.at(0, 0, y, x), both.at(0, co, y, x));
                }
            }
        }
    }

    #[test]
    fn batches_are_independent() {
        let mut rng = StdRng::seed_from_u64(2);
        let input = Tensor4::random(3, 2, 5, 5, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let all = conv2d_reference(&input, &weights, ConvParams::new(1, 1));
        for n in 0..3 {
            let single = Tensor4::from_fn(1, 2, 5, 5, |_, c, h, w| input.at(n, c, h, w));
            let out = conv2d_reference(&single, &weights, ConvParams::new(1, 1));
            for co in 0..2 {
                for y in 0..all.h {
                    for x in 0..all.w {
                        assert_eq!(out.at(0, co, y, x), all.at(n, co, y, x));
                    }
                }
            }
        }
    }

    #[test]
    fn layout_of_input_does_not_change_result() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor4::random(1, 3, 6, 6, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let base = conv2d_reference(&input, &weights, ConvParams::new(2, 1));
        for layout in Layout::ALL {
            let out = conv2d_reference(&input.to_layout(layout), &weights, ConvParams::new(2, 1));
            assert_eq!(out.max_abs_diff(&base), 0.0, "layout {layout}");
        }
    }

    #[test]
    fn linearity_in_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor4::random(1, 2, 4, 4, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let mut a2 = a.clone();
        for v in a2.as_mut_slice() {
            *v *= 2.0;
        }
        let out1 = conv2d_reference(&a, &weights, ConvParams::unit());
        let out2 = conv2d_reference(&a2, &weights, ConvParams::unit());
        let mut doubled = out1.clone();
        for v in doubled.as_mut_slice() {
            *v *= 2.0;
        }
        assert!(out2.approx_eq(&doubled, 1e-5, 1e-6));
    }
}
