#!/usr/bin/env bash
# Shard-server daemon smoke: start `tune-cache serve`, run two
# concurrent `tune-net --daemon` clients with overlapping networks,
# assert a third client replays with zero new measurements, then shut
# the daemon down cleanly (exit 0, socket file removed).
set -euo pipefail

TC=target/release/tune-cache
DIR=$(mktemp -d /tmp/iolb-daemon-smoke.XXXXXX)
SOCK="$DIR/daemon.sock"
NET_A="32,14,14,16,1,1,1,0;16,14,14,32,1,1,1,0;32,14,14,16,1,1,1,0"
NET_B="16,14,14,32,1,1,1,0;24,14,14,12,1,1,1,0"

"$TC" serve "$DIR" --budget 8 --merge-interval-ms 100 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon socket never appeared"; exit 1; }

# Two concurrent client processes with overlapping workloads.
"$TC" tune-net --layers "$NET_A" --daemon "$SOCK" &
CLIENT_A=$!
"$TC" tune-net --layers "$NET_B" --daemon "$SOCK" &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

# A later client must replay purely from daemon memory.
REPLAY=$("$TC" tune-net --layers "$NET_A" --daemon "$SOCK")
echo "$REPLAY"
echo "$REPLAY" | grep -q " 0 fresh measurement(s)" \
  || { echo "replay client performed fresh measurements"; exit 1; }

# Clean shutdown: exit 0 and the socket file is gone.
"$TC" stop "$SOCK"
wait "$SERVE_PID"
[ ! -e "$SOCK" ] || { echo "socket file survived shutdown"; exit 1; }

# The directory the daemon persisted is loadable and non-trivial.
"$TC" serve-stats "$DIR"
echo "daemon smoke OK"
