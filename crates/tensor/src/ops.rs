//! Standalone epilogue operators: ReLU and non-overlapping max-pooling.
//!
//! These are the **unfused reference composition** for fused
//! conv→epilogue chains: a fused executor in `iolb-dataflow` must produce
//! output bit-identical to running the bare convolution and then these
//! operators, each as its own pass over a materialized tensor. To make
//! that contract checkable at the bit level, the fused paths use the
//! exact same per-element expressions — [`relu_val`] for the activation
//! and the [`maxpool2d`] window fold order (`dy` outer, `dx` inner,
//! `f32::max` accumulation from `f32::NEG_INFINITY`).

use crate::tensor::Tensor4;

/// The activation applied to one element: the explicit comparison form
/// of `max(v, 0.0)`. Every non-positive input (including `-0.0`) maps to
/// positive `0.0`, so the result is a single well-defined bit pattern —
/// fused and unfused paths share this one definition, which is what
/// makes their outputs comparable with `==` on the raw bits.
#[inline]
pub fn relu_val(v: f32) -> f32 {
    if v > 0.0 {
        v
    } else {
        0.0
    }
}

/// Elementwise ReLU as its own pass (the unfused epilogue kernel).
pub fn relu(t: &Tensor4) -> Tensor4 {
    let mut out = Tensor4::zeros(t.n, t.c, t.h, t.w);
    for (o, &v) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
        *o = relu_val(v);
    }
    out
}

/// Non-overlapping `k x k` max-pooling (stride `k`) as its own pass.
///
/// Requires `k` to divide both spatial extents — the same exact-tiling
/// precondition the fusion gate (`Epilogue::fusable_on` in `iolb-core`)
/// checks, enforced here so the unfused reference cannot silently drop
/// border pixels the fused path would keep (or vice versa).
pub fn maxpool2d(t: &Tensor4, k: usize) -> Tensor4 {
    assert!(k > 0, "pool window must be non-empty");
    assert_eq!(t.h % k, 0, "pool window must tile the height exactly");
    assert_eq!(t.w % k, 0, "pool window must tile the width exactly");
    let (ph, pw) = (t.h / k, t.w / k);
    let mut out = Tensor4::zeros(t.n, t.c, ph, pw);
    for n in 0..t.n {
        for c in 0..t.c {
            for py in 0..ph {
                for px in 0..pw {
                    let mut m = f32::NEG_INFINITY;
                    for dy in 0..k {
                        for dx in 0..k {
                            m = m.max(t.at(n, c, py * k + dy, px * k + dx));
                        }
                    }
                    *out.at_mut(n, c, py, px) = m;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_zeroes_non_positives_and_keeps_positives() {
        let t = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| match (h, w) {
            (0, 0) => -1.5,
            (0, 1) => 0.0,
            (1, 0) => -0.0,
            _ => 2.5,
        });
        let r = relu(&t);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.0, 2.5]);
        // Negative zero is normalized to positive zero.
        assert_eq!(r.at(0, 0, 1, 0).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn maxpool_takes_the_window_max() {
        let t = Tensor4::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f32);
        let p = maxpool2d(&t, 2);
        assert_eq!((p.h, p.w), (2, 2));
        assert_eq!(p.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_handles_all_negative_windows() {
        let t = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| -1.0 - (h * 2 + w) as f32);
        let p = maxpool2d(&t, 2);
        assert_eq!(p.as_slice(), &[-1.0]);
    }

    #[test]
    fn maxpool_is_deterministic_on_random_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor4::random(2, 3, 8, 8, &mut rng);
        let a = maxpool2d(&relu(&t), 2);
        let b = maxpool2d(&relu(&t), 2);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "tile the height")]
    fn maxpool_rejects_non_dividing_windows() {
        let _ = maxpool2d(&Tensor4::zeros(1, 1, 5, 4), 2);
    }
}
