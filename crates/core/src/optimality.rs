//! Integer tile selection under the optimality condition (§5.2/§5.3 and the
//! Table 1 searching domain).
//!
//! The analytic optimum `x y = R z`, `x y z = S_b` is real-valued; real
//! schedules need `x | H_out`, `y | W_out`, `z | C_out` (Table 1: "tile
//! size which are the factor of Hout, Wout, Cout"). This module enumerates
//! factor triples, scores them by the Eq. 20/22 read volume, and returns the
//! best feasible tile. The auto-tuner uses the same machinery to build its
//! pruned searching domain.

use crate::shapes::{ConvShape, WinogradTile};

/// A concrete integer output tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Tile height `x` (divides `H_out`).
    pub x: usize,
    /// Tile width `y` (divides `W_out`).
    pub y: usize,
    /// Tile depth in output channels `z` (divides `C_out`).
    pub z: usize,
}

impl Tile {
    pub fn volume(&self) -> usize {
        self.x * self.y * self.z
    }
}

impl std::fmt::Display for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

/// Output extents a schedule's tiles must divide. Real kernels launch
/// `ceil(out/tile)` blocks with predicated edges; factor-constrained tiles
/// over a *slightly padded* extent model that while keeping the Table 1
/// "tile divides output" semantics. Direct extents round up to the next
/// multiple of 4 (>= 32), 2 (>= 8) or stay exact (< 8); Winograd extents
/// additionally round to multiples of the output tile edge `e`. The padded
/// rows are charged as full traffic — an overcount of a few percent that
/// only penalises our own schedules.
pub fn padded_out(shape: &ConvShape, kind: TileKind) -> (usize, usize) {
    fn lcm(a: usize, b: usize) -> usize {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        a / gcd(a, b) * b
    }
    let quantum = |n: usize| -> usize {
        let q = match kind {
            TileKind::Direct => {
                if n >= 32 {
                    4
                } else if n >= 8 {
                    2
                } else {
                    1
                }
            }
            TileKind::Winograd(t) => {
                if n >= 32 {
                    lcm(t.e, 4)
                } else {
                    t.e
                }
            }
        };
        n.div_ceil(q) * q
    };
    (quantum(shape.hout()), quantum(shape.wout()))
}

/// All positive divisors of `n`, ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    assert!(n > 0, "divisors of zero are unbounded");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Which algorithm the tile is for; affects both the on-chip budget
/// accounting and the reuse factor in the optimality condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKind {
    /// Direct convolution: budget is the output tile itself (`xyz` partial
    /// sums stay resident), reuse factor `R = Wk Hk / mu^2`.
    Direct,
    /// Winograd: budget is the two temporary arrays,
    /// `2 (e+r-1)^2/e^2 * xyz`, reuse factor `r^2`.
    Winograd(WinogradTile),
}

impl TileKind {
    /// Reuse factor entering the optimality condition `x y = R z`.
    pub fn reuse(&self, shape: &ConvShape) -> f64 {
        match self {
            TileKind::Direct => shape.reuse_factor(),
            TileKind::Winograd(t) => (t.r * t.r) as f64,
        }
    }

    /// On-chip elements consumed by a tile under the *paper's* accounting
    /// (§5.3 keeps two temporary arrays per in-flight Winograd tile).
    pub fn onchip_elems(&self, tile: &Tile) -> f64 {
        match self {
            TileKind::Direct => tile.volume() as f64,
            TileKind::Winograd(t) => {
                crate::winograd::onchip_budget(*t, tile.x as f64, tile.y as f64, tile.z as f64)
            }
        }
    }

    /// Resident accumulator elements of the *implementation*: the direct
    /// dataflow keeps the `xyz` partial sums; the Winograd dataflow keeps
    /// one `(e+r-1)^2` accumulator per tile (`Pi += P ⊙ J` fuses the
    /// multiply into the accumulation, so the paper's second temporary
    /// array is never materialised — strictly less on-chip state for the
    /// same dataflow; see DESIGN.md).
    pub fn accumulator_elems(&self, tile: &Tile) -> f64 {
        match self {
            TileKind::Direct => tile.volume() as f64,
            TileKind::Winograd(t) => {
                let a = t.a() as f64;
                a * a / (t.e * t.e) as f64 * tile.volume() as f64
            }
        }
    }

    /// Read I/O volume for this tile (Eq. 20 or Eq. 22).
    pub fn read_io(&self, shape: &ConvShape, tile: &Tile) -> f64 {
        let (x, y, z) = (tile.x as f64, tile.y as f64, tile.z as f64);
        match self {
            TileKind::Direct => crate::direct::dataflow_read_io(shape, x, y, z),
            TileKind::Winograd(t) => crate::winograd::dataflow_read_io(shape, *t, x, y, z),
        }
    }

    /// Halo-exact read I/O: like [`TileKind::read_io`] but charging the
    /// true input staging extent `x' = (x-1)mu + K` instead of Eq. 20's
    /// `x' ~= mu x` approximation, with blocks counted over the padded
    /// extents. Eq. 20 ties all tiles of equal `xy` product; the halo
    /// breaks the tie in favour of square tiles, which is what a real tile
    /// loader pays.
    pub fn exact_read_io(&self, shape: &ConvShape, tile: &Tile) -> f64 {
        let (hp, wp) = padded_out(shape, *self);
        let blocks = (hp.div_ceil(tile.x) * wp.div_ceil(tile.y) * shape.cout.div_ceil(tile.z))
            as f64
            * shape.batch as f64;
        match self {
            TileKind::Direct => {
                let xp = ((tile.x - 1) * shape.stride + shape.kh) as f64;
                let yp = ((tile.y - 1) * shape.stride + shape.kw) as f64;
                blocks * shape.cin as f64 * (xp * yp + (shape.kh * shape.kw * tile.z) as f64)
            }
            TileKind::Winograd(t) => {
                let xp = (tile.x + t.r - 1) as f64;
                let yp = (tile.y + t.r - 1) as f64;
                blocks * shape.cin as f64 * (xp * yp + (t.r * t.r * tile.z) as f64)
            }
        }
    }
}

/// Result of a tile search.
#[derive(Debug, Clone)]
pub struct TileChoice {
    pub tile: Tile,
    /// Modelled read I/O (elements) at this tile.
    pub read_io: f64,
    /// Relative deviation from the optimality condition `xy = Rz`.
    pub deviation: f64,
}

/// Enumerates every feasible tile: factor triples of the *padded* output
/// extents (see [`padded_out`]) whose implementation footprint
/// ([`TileKind::accumulator_elems`]) fits in `sb` elements. Winograd tiles
/// are additionally multiples of `e`.
pub fn feasible_tiles(shape: &ConvShape, kind: TileKind, sb: f64) -> Vec<Tile> {
    let (hp, wp) = padded_out(shape, kind);
    let e = match kind {
        TileKind::Direct => 1,
        TileKind::Winograd(t) => t.e,
    };
    let mut out = Vec::new();
    for &x in divisors(hp).iter().filter(|&&d| d % e == 0) {
        for &y in divisors(wp).iter().filter(|&&d| d % e == 0) {
            for &z in &divisors(shape.cout) {
                let t = Tile { x, y, z };
                if kind.accumulator_elems(&t) <= sb {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Picks the feasible tile minimising the *halo-exact* read I/O
/// ([`TileKind::exact_read_io`]); ties broken by larger volume (better
/// amortisation of fixed costs), then smaller optimality-condition
/// deviation. The reported `read_io` is the halo-exact figure.
pub fn best_tile(shape: &ConvShape, kind: TileKind, sb: f64) -> Option<TileChoice> {
    let r = kind.reuse(shape);
    feasible_tiles(shape, kind, sb)
        .into_iter()
        .map(|tile| {
            let read_io = kind.exact_read_io(shape, &tile);
            let lhs = (tile.x * tile.y) as f64;
            let rhs = r * tile.z as f64;
            let deviation = (lhs - rhs).abs() / lhs.max(rhs);
            TileChoice { tile, read_io, deviation }
        })
        .min_by(|a, b| {
            a.read_io
                .total_cmp(&b.read_io)
                .then(b.tile.volume().cmp(&a.tile.volume()))
                .then(a.deviation.total_cmp(&b.deviation))
        })
}

/// The relaxed (real-valued) optimum read I/O for the same budget — a floor
/// no integer tile can beat. For `TileKind::Direct` with on-chip budget
/// `sb`: `xyz = sb`, `xy = Rz`; for Winograd the budget is deflated by the
/// temporary-array factor first.
pub fn relaxed_optimum_read_io(shape: &ConvShape, kind: TileKind, sb: f64) -> f64 {
    let r = kind.reuse(shape);
    let xyz = match kind {
        TileKind::Direct => sb,
        TileKind::Winograd(t) => {
            let a = t.a() as f64;
            sb * (t.e * t.e) as f64 / (2.0 * a * a)
        }
    };
    let z = (xyz / r).sqrt();
    let xy = r * z;
    let x = xy.sqrt();
    kind.read_io(shape, &Tile { x: 1, y: 1, z: 1 }) * 0.0 // keep shape borrow simple
        + match kind {
            TileKind::Direct => crate::direct::dataflow_read_io(shape, x, x, z),
            TileKind::Winograd(t) => crate::winograd::dataflow_read_io(shape, t, x, x, z),
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_are_complete_and_sorted() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(49), vec![1, 7, 49]);
        assert_eq!(divisors(56), vec![1, 2, 4, 7, 8, 14, 28, 56]);
    }

    #[test]
    fn feasible_tiles_respect_budget_and_divisibility() {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let sb = 512.0;
        let tiles = feasible_tiles(&shape, TileKind::Direct, sb);
        assert!(!tiles.is_empty());
        for t in &tiles {
            assert_eq!(shape.hout() % t.x, 0);
            assert_eq!(shape.wout() % t.y, 0);
            assert_eq!(shape.cout % t.z, 0);
            assert!(t.volume() as f64 <= sb);
        }
    }

    #[test]
    fn best_tile_never_beats_relaxed_optimum() {
        for hw in [14usize, 28, 56] {
            let shape = ConvShape::square(128, hw, 64, 3, 1, 1);
            for sb in [256.0, 1024.0, 4096.0] {
                let best = best_tile(&shape, TileKind::Direct, sb).unwrap();
                let floor = relaxed_optimum_read_io(&shape, TileKind::Direct, sb);
                assert!(
                    best.read_io >= floor * 0.999,
                    "hw={hw} sb={sb}: integer {0} < relaxed {floor}",
                    best.read_io
                );
            }
        }
    }

    #[test]
    fn best_tile_close_to_relaxed_optimum_when_factors_rich() {
        // Hout=Wout=56 and Cout=64 have many divisors: the integer optimum
        // should land within 2x of the relaxed bound.
        let shape = ConvShape::square(256, 56, 64, 3, 1, 1);
        let sb = 2048.0;
        let best = best_tile(&shape, TileKind::Direct, sb).unwrap();
        let floor = relaxed_optimum_read_io(&shape, TileKind::Direct, sb);
        assert!(best.read_io < 2.0 * floor, "integer {} floor {floor}", best.read_io);
    }

    #[test]
    fn winograd_budget_includes_temporary_arrays() {
        let tile = Tile { x: 4, y: 4, z: 4 };
        let kind = TileKind::Winograd(WinogradTile::F2X3);
        // 2 * 16/4 * 64 = 512 elements.
        assert!((kind.onchip_elems(&tile) - 512.0).abs() < 1e-9);
        // Direct budget is just the volume.
        assert!((TileKind::Direct.onchip_elems(&tile) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn winograd_best_tile_feasible() {
        let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
        let kind = TileKind::Winograd(WinogradTile::F2X3);
        let sb = 6144.0;
        let best = best_tile(&shape, kind, sb).unwrap();
        assert!(kind.accumulator_elems(&best.tile) <= sb);
        // The paper's two-array accounting is exactly double the fused
        // implementation footprint.
        assert!(
            (kind.onchip_elems(&best.tile) - 2.0 * kind.accumulator_elems(&best.tile)).abs() < 1e-9
        );
        // Condition xy = r^2 z should be approachable with rich factors
        // (the halo-exact scorer shifts the optimum slightly toward deeper
        // z, so the Eq. 22 deviation is loose but bounded).
        assert!(best.deviation < 0.7, "deviation {}", best.deviation);
    }

    #[test]
    fn more_budget_means_no_more_io() {
        let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
        let mut prev = f64::INFINITY;
        for sb in [128.0, 512.0, 2048.0, 8192.0] {
            let best = best_tile(&shape, TileKind::Direct, sb).unwrap();
            assert!(best.read_io <= prev * 1.0001, "sb={sb}");
            prev = best.read_io;
        }
    }

    #[test]
    fn tiny_budget_still_has_unit_tile() {
        let shape = ConvShape::square(8, 7, 3, 3, 1, 1);
        let best = best_tile(&shape, TileKind::Direct, 1.0).unwrap();
        assert_eq!(best.tile, Tile { x: 1, y: 1, z: 1 });
    }
}
