//! Figure 13 — sensitivity across GPU architectures (1080Ti Pascal,
//! Titan X Maxwell, AMD gfx906): achieved GFLOP/s of our tuned dataflow vs
//! the TVM stand-in vs cuDNN/MIOpen, for the paper's four convolution
//! cases.

use iolb_bench::{banner, cudnn_direct_ms, cudnn_winograd_ms, run_tuner, TunerKind};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_gpusim::DeviceSpec;

struct Case {
    title: &'static str,
    shape: ConvShape,
    kind: TileKind,
}

fn main() {
    banner(
        "Figure 13: cross-architecture sensitivity",
        "GFLOP/s of ours (ATE) vs TVM stand-in vs cuDNN/MIOpen stand-in; budget 160",
    );
    let devices = [DeviceSpec::gtx1080ti(), DeviceSpec::titan_x(), DeviceSpec::gfx906()];
    let cases = [
        Case {
            title: "direct 28x28 s1 (Cin 512, Cout 128)",
            shape: ConvShape::square(512, 28, 128, 3, 1, 1),
            kind: TileKind::Direct,
        },
        Case {
            title: "direct 112x112 s1 (Cin 512, Cout 128)",
            shape: ConvShape::square(512, 112, 128, 3, 1, 1),
            kind: TileKind::Direct,
        },
        Case {
            title: "direct 112x112 s2 (Cin 512, Cout 128)",
            shape: ConvShape::square(512, 112, 128, 3, 2, 1),
            kind: TileKind::Direct,
        },
        Case {
            title: "winograd 112x112 s1 (Cin 512, Cout 128)",
            shape: ConvShape::square(512, 112, 128, 3, 1, 1),
            kind: TileKind::Winograd(WinogradTile::F2X3),
        },
    ];

    let budget = 160;
    for case in &cases {
        println!("\n--- {} ---", case.title);
        println!("{:<14} {:>12} {:>12} {:>14}", "device", "ours GF", "TVM GF", "cuDNN/MIOpen GF");
        for device in &devices {
            let ours = run_tuner(TunerKind::Ate, &case.shape, case.kind, device, budget, 23);
            let tvm = run_tuner(TunerKind::TvmSa, &case.shape, case.kind, device, budget, 23);
            let base_ms = match case.kind {
                TileKind::Direct => cudnn_direct_ms(&case.shape, device),
                TileKind::Winograd(_) => cudnn_winograd_ms(&case.shape, device),
            };
            // Report the baseline at the direct-equivalent flop count like
            // the tuners do for their own algorithm.
            let flops = match case.kind {
                TileKind::Direct => case.shape.flops() as f64,
                TileKind::Winograd(t) => iolb_core::Algorithm::Winograd(t).flops(&case.shape),
            };
            let base_gf = flops / (base_ms * 1e-3) / 1e9;
            println!(
                "{:<14} {:>12.1} {:>12.1} {:>14.1}",
                device.name,
                ours.as_ref().map_or(f64::NAN, |r| r.best_gflops),
                tvm.as_ref().map_or(f64::NAN, |r| r.best_gflops),
                base_gf,
            );
        }
    }
    println!("\nPaper reference: ours > TVM > cuDNN/MIOpen on every architecture;");
    println!("ours/TVM ~ 1.0-1.3x, ours/cuDNN up to ~5x on the direct cases.");
}
