//! # iolb-autotune — the I/O-lower-bound-guided auto-tuning engine
//!
//! Reproduction of the paper's §6: a learned-cost-model auto-tuner whose
//! searching domain is pruned by the optimality condition `xy = Rz`
//! derived from the I/O lower bounds.
//!
//! * [`space`] — the Table 1 configuration space, full (TVM-style) and
//!   pruned (ATE) variants; Table 2's space-size comparison comes from
//!   [`space::ConfigSpace::count`].
//! * [`features`] — configuration featurisation for the model.
//! * [`gbt`] — gradient-boosted regression trees, from scratch (the
//!   XGBoost stand-in).
//! * [`cost_model`] — the trainable cost-model abstraction.
//! * [`search`] — four strategies: random, simulated annealing, genetic
//!   (the TVM baselines) and the paper's parallel random walk.
//! * [`measure`] — the template-manager stand-in: lowers a configuration
//!   through `iolb-dataflow` and times it on `iolb-gpusim`.
//! * [`engine`] — the train → search → measure loop (Fig. 8) with the
//!   paper's convergence criterion, plus the [`engine::tune_with_store`]
//!   variant backed by the persistent `iolb-records` store (measurement
//!   cache, warm start, cross-layer transfer).

#![allow(clippy::needless_range_loop)] // index loops read clearer in the tree learner
pub mod cost_model;
pub mod engine;
pub mod features;
pub mod gbt;
pub mod measure;
pub mod search;
pub mod space;

pub use cost_model::{CostModel, GbtCostModel, NoModel};
pub use engine::{
    tune, tune_with_store, tune_with_store_mode, workload_for, CurvePoint, StoreMode,
    StoreTuneResult, TuneParams, TuneResult,
};
pub use measure::Measurer;
pub use search::{History, Searcher};
pub use space::ConfigSpace;
