//! Parallel-vs-serial tuning equivalence (ISSUE 1 acceptance gate),
//! isolated in its own test binary: this is the only test that mutates
//! `RAYON_NUM_THREADS`, and on glibc a `setenv` racing `getenv` from
//! another thread is undefined behavior. A dedicated binary means no
//! sibling test threads are reading the environment while this one
//! writes it (the rayon shim re-reads the variable on every parallel
//! call, but all worker threads are joined before each mutation below).

mod common;

use common::{assert_identical, run_tuning};

#[test]
fn parallel_run_matches_forced_serial_run() {
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_tuning(0xA7E);
    std::env::set_var("RAYON_NUM_THREADS", "8");
    let parallel = run_tuning(0xA7E);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_identical(&serial, &parallel, "serial-vs-parallel");
}
