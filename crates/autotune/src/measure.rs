//! Measurement harness (paper Fig. 8, "Template Manager" box).
//!
//! In the paper, a configuration is compiled from the dataflow template
//! and timed on the GPU. Here the template lowering is
//! `iolb_dataflow::{direct,winograd}_kernel` and the "hardware" is the
//! `iolb-gpusim` engine — a consistent, configuration-sensitive cost
//! signal whose minima sit where the theory predicts.

use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_dataflow::{direct_kernel, winograd_kernel};
use iolb_gpusim::{simulate, DeviceSpec};
use rayon::prelude::*;

/// Measures configurations of one convolution on one device.
#[derive(Clone)]
pub struct Measurer {
    pub device: DeviceSpec,
    pub shape: ConvShape,
    pub kind: TileKind,
    /// Fused epilogue of the chain under measurement. When non-`None`,
    /// every measured time includes the analytic fused-epilogue term
    /// ([`crate::fusion::epilogue_fused_ms`]) on top of the simulated
    /// conv kernel — so fused and unfused records are comparable wall
    /// times, not conv-only times.
    pub epilogue: Epilogue,
}

impl Measurer {
    pub fn new(device: DeviceSpec, shape: ConvShape, kind: TileKind) -> Self {
        Self { device, shape, kind, epilogue: Epilogue::None }
    }

    /// The same measurer fused with `epilogue` (builder-style).
    pub fn with_epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Measured execution time in milliseconds, or `None` for
    /// configurations that fail to build — tiles whose staging footprint
    /// overflows their shared-memory allocation (TVM's compile-failure
    /// analogue; such candidates still consume tuning budget) or block
    /// shapes the device cannot launch.
    pub fn measure_ms(&self, cfg: &ScheduleConfig) -> Option<f64> {
        if cfg.validate(&self.shape, self.kind, self.device.smem_per_sm, false).is_err() {
            return None;
        }
        let kernel = match self.kind {
            TileKind::Direct => direct_kernel(&self.shape, cfg),
            TileKind::Winograd(t) => winograd_kernel(&self.shape, t, cfg),
        };
        let epi_ms = crate::fusion::epilogue_fused_ms(&self.shape, self.epilogue, &self.device);
        simulate(&self.device, &kernel).ok().map(|s| s.time_ms + epi_ms)
    }

    /// Measures a whole proposal batch on rayon workers.
    ///
    /// `measure_ms` is a pure function of the configuration and results
    /// come back in input order, so the output is identical to mapping
    /// `measure_ms` serially — this is what keeps the parallel tuning
    /// loop bit-for-bit deterministic.
    pub fn measure_batch(&self, cfgs: &[ScheduleConfig]) -> Vec<Option<f64>> {
        cfgs.par_iter().map(|cfg| self.measure_ms(cfg)).collect()
    }

    /// Arithmetic throughput in GFLOP/s for a measured time — the metric
    /// Table 2 and Figs. 11/13 report. Uses the *algorithm's* flop count
    /// (direct-equivalent for direct, transform-reduced for Winograd).
    pub fn gflops(&self, time_ms: f64) -> f64 {
        let flops = match self.kind {
            TileKind::Direct => self.shape.flops() as f64,
            TileKind::Winograd(t) => iolb_core::Algorithm::Winograd(t).flops(&self.shape),
        } + self.epilogue.flops(&self.shape);
        flops / (time_ms * 1e-3) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_tensor::layout::Layout;

    fn measurer() -> Measurer {
        Measurer::new(DeviceSpec::v100(), ConvShape::square(64, 28, 32, 3, 1, 1), TileKind::Direct)
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 7,
            y: 7,
            z: 8,
            nxt: 7,
            nyt: 7,
            nzt: 2,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let m = measurer();
        let a = m.measure_ms(&cfg()).unwrap();
        let b = m.measure_ms(&cfg()).unwrap();
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn gflops_inversely_proportional_to_time() {
        let m = measurer();
        let g1 = m.gflops(1.0);
        let g2 = m.gflops(2.0);
        assert!((g1 / g2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn different_configs_measure_differently() {
        let m = measurer();
        let a = m.measure_ms(&cfg()).unwrap();
        let skew = ScheduleConfig { x: 1, y: 1, nxt: 1, nyt: 1, z: 32, nzt: 8, ..cfg() };
        let b = m.measure_ms(&skew).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_measurement_matches_serial_in_order() {
        let m = measurer();
        let mut cfgs = vec![cfg()];
        cfgs.push(ScheduleConfig { x: 1, y: 1, nxt: 1, nyt: 1, z: 32, nzt: 8, ..cfg() });
        cfgs.push(ScheduleConfig { sb_bytes: 1024 * 1024, ..cfg() }); // build failure
        cfgs.push(ScheduleConfig { x: 14, y: 14, z: 4, ..cfg() });
        let parallel = m.measure_batch(&cfgs);
        let serial: Vec<Option<f64>> = cfgs.iter().map(|c| m.measure_ms(c)).collect();
        assert_eq!(parallel, serial);
        assert!(parallel[2].is_none(), "oversized staging buffer must fail to build");
    }

    #[test]
    fn fused_measurement_adds_a_deterministic_epilogue_term() {
        use iolb_core::epilogue::Epilogue;
        let bare = measurer();
        let t_bare = bare.measure_ms(&cfg()).unwrap();
        for epilogue in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
            let fused = measurer().with_epilogue(epilogue);
            let t_fused = fused.measure_ms(&cfg()).unwrap();
            let epi = crate::fusion::epilogue_fused_ms(&fused.shape, epilogue, &fused.device);
            assert_ne!(epi, 0.0);
            assert_eq!(t_fused.to_bits(), (t_bare + epi).to_bits(), "{epilogue}: term not exact");
            // And repeatably so.
            assert_eq!(t_fused.to_bits(), fused.measure_ms(&cfg()).unwrap().to_bits());
        }
        // Relu only adds resident arithmetic, so its term is positive; a
        // fused pool *saves* write-back traffic and may come out ahead of
        // the bare conv — the sign is the model's call, exactness is ours.
        let relu = crate::fusion::epilogue_fused_ms(&bare.shape, Epilogue::Relu, &bare.device);
        assert!(relu > 0.0);
    }

    #[test]
    fn infeasible_config_returns_none() {
        let m = measurer();
        let big = ScheduleConfig { sb_bytes: 1024 * 1024, ..cfg() };
        assert!(m.measure_ms(&big).is_none());
    }
}
