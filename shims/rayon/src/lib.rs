//! Offline stand-in for the `rayon` crate: genuinely parallel slice
//! iterators, [`join`], and [`scope`] backed by a **persistent worker
//! pool** (like the real crate's global pool).
//!
//! The build environment has no network access, so the real crates.io
//! `rayon` cannot be vendored. This shim keeps call sites
//! source-compatible for the subset the workspace uses and preserves the
//! property the auto-tuner depends on: **order-preserving results**.
//! `par_iter().map(f).collect::<Vec<_>>()` returns outputs in input
//! order regardless of thread interleaving, so a caller that reduces the
//! collected vector serially is bit-for-bit deterministic.
//!
//! Work is split into contiguous chunks, one per worker, capped by
//! [`current_num_threads`]. Small inputs (fewer than two elements per
//! potential worker, or below a caller-tunable `min_len`) run inline on
//! the calling thread.
//!
//! ## The pool
//!
//! Worker threads are spawned once, on the first parallel call, and then
//! persist for the life of the process ([`pool_thread_count`] of them —
//! `available_parallelism - 1`, the calling thread being the +1). Every
//! parallel primitive turns its chunks into a batch of tasks; pool
//! workers *help* with the batch, and the **caller always works on its
//! own batch too**, so a batch completes even if every pool worker is
//! busy elsewhere — which also makes nested parallelism deadlock-free by
//! construction. This removes the ~10 µs thread-spawn cost the old
//! scoped-thread implementation paid on every call, which is what made
//! fine-grained fan-outs (small GEMM bands, per-batch measurement) lose
//! to serial execution.
//!
//! Idle workers block on the job queue and **read no environment
//! variables**; `RAYON_NUM_THREADS` is consulted only by the thread that
//! issues a parallel call, so tests that mutate it between (not during)
//! parallel regions stay free of `setenv`/`getenv` races.
//!
//! ```
//! use rayon::prelude::*;
//!
//! // Order-preserving: collect returns results in input order no matter
//! // how the pool interleaves the chunks.
//! let doubled: Vec<i32> = vec![1, 2, 3, 4].par_iter().map(|&x| x * 2).collect();
//! assert_eq!(doubled, vec![2, 4, 6, 8]);
//! ```

use std::num::NonZeroUsize;

mod pool {
    //! The persistent worker pool and the caller-helps batch protocol.
    //!
    //! Safety model: a batch's tasks may borrow the caller's stack (the
    //! closures are `'a`, not `'static`). [`run_batch`] transmutes them
    //! to `'static` to cross the queue, which is sound because it does
    //! not return — on the success *and* the panic path — until every
    //! task of the batch has finished running, so no borrow outlives its
    //! referent. Task panics are caught, the batch is still drained to
    //! completion, and the first payload is resumed on the caller.

    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

    /// A type-erased batch task. `'static` only after the [`run_batch`]
    /// transmute; see the module docs for why that is sound.
    type Task = Box<dyn FnOnce() + Send + 'static>;

    /// A job handed to a pool worker: "help some batch until it has no
    /// unclaimed tasks left".
    type HelperJob = Box<dyn FnOnce() + Send + 'static>;

    struct Pool {
        sender: mpsc::Sender<HelperJob>,
        workers: usize,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| {
            // The caller participates in every batch, so the pool itself
            // only needs `cores - 1` threads to saturate the machine.
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .saturating_sub(1);
            let (sender, receiver) = mpsc::channel::<HelperJob>();
            let receiver = Arc::new(Mutex::new(receiver));
            for i in 0..workers {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("iolb-rayon-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing, never while
                        // running a job.
                        let job = { receiver.lock().unwrap().recv() };
                        match job {
                            // A panicking job must not kill the worker:
                            // batch helpers already catch per-task (so
                            // this never fires for them), but detached
                            // `spawn` jobs reach here raw, and a dead
                            // worker would shrink the pool forever.
                            Ok(job) => {
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => break, // channel closed: process exit
                        }
                    })
                    .expect("failed to spawn pool worker");
            }
            Pool { sender, workers }
        })
    }

    /// Number of persistent worker threads backing the pool (excluding
    /// callers, which always help with their own batches). Exposed so
    /// tests can pin pool persistence: the set of distinct worker-thread
    /// ids observed across arbitrarily many parallel calls can never
    /// exceed this.
    pub fn pool_thread_count() -> usize {
        pool().workers
    }

    /// Fire-and-forget: enqueues a `'static` job onto the persistent pool
    /// (mirrors `rayon::spawn`). Unlike batches there is no completion
    /// barrier — the caller never helps and never waits, so the job runs
    /// whenever a worker is idle. On a single-core host the pool has zero
    /// workers and the job would never run; it is executed inline instead,
    /// preserving the "spawn always eventually runs" contract.
    pub fn spawn_detached(job: Box<dyn FnOnce() + Send + 'static>) {
        let p = pool();
        if p.workers == 0 {
            return job();
        }
        let _ = p.sender.send(job);
    }

    /// Shared state of one batch of tasks.
    struct Batch {
        /// Task slots; each index is claimed exactly once via `next`, so
        /// the claimer has exclusive access to its cell.
        slots: Box<[std::cell::UnsafeCell<Option<Task>>]>,
        next: AtomicUsize,
        /// Tasks not yet finished (claimed-and-running included).
        remaining: Mutex<usize>,
        done: Condvar,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    // SAFETY: slot access is serialized by the `next` counter (each index
    // claimed exactly once), everything else is lock-protected.
    unsafe impl Sync for Batch {}

    /// Claims and runs one task. Returns `false` when no unclaimed tasks
    /// remain.
    fn run_one(batch: &Batch) -> bool {
        let idx = batch.next.fetch_add(1, Ordering::SeqCst);
        if idx >= batch.slots.len() {
            return false;
        }
        // SAFETY: `idx` was claimed exactly once (fetch_add), giving this
        // thread exclusive access to the slot.
        let task = unsafe { (*batch.slots[idx].get()).take() }.expect("task slot claimed twice");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            batch.panic.lock().unwrap().get_or_insert(payload);
        }
        let mut remaining = batch.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            batch.done.notify_all();
        }
        true
    }

    /// Runs a batch of tasks across the pool, returning only when every
    /// task has completed. The caller executes tasks too, so completion
    /// does not depend on pool workers being free.
    pub fn run_batch<'a>(tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let count = tasks.len();
        match count {
            0 => return,
            1 => {
                // Nothing to distribute.
                return (tasks.into_iter().next().unwrap())();
            }
            _ => {}
        }
        // SAFETY: extending the closures' lifetime to 'static is sound
        // because this function does not return until all of them have
        // run (see the wait below, reached on the panic path as well —
        // task panics are caught, not propagated mid-batch).
        let slots: Box<[std::cell::UnsafeCell<Option<Task>>]> = tasks
            .into_iter()
            .map(|t| {
                let t: Task = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'a>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(t)
                };
                std::cell::UnsafeCell::new(Some(t))
            })
            .collect();
        let batch = Arc::new(Batch {
            slots,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let p = pool();
        for _ in 0..p.workers.min(count - 1) {
            let helper = Arc::clone(&batch);
            // A send error means zero workers (single-core host); the
            // caller simply runs the whole batch below.
            let _ = p.sender.send(Box::new(move || while run_one(&helper) {}));
        }
        while run_one(&batch) {}
        let mut remaining = batch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap();
        }
        drop(remaining);
        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Shared state of one [`scope`](super::scope): a dynamic task queue
    /// (spawns may spawn), drained cooperatively by pool helpers and the
    /// scope's caller.
    pub(crate) struct ScopeShared {
        state: Mutex<ScopeState>,
        wake: Condvar,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    struct ScopeState {
        queue: VecDeque<Task>,
        /// Tasks currently executing (claimed but unfinished).
        active: usize,
    }

    impl ScopeShared {
        pub(crate) fn new() -> Self {
            Self {
                state: Mutex::new(ScopeState { queue: VecDeque::new(), active: 0 }),
                wake: Condvar::new(),
                panic: Mutex::new(None),
            }
        }

        /// Enqueues a scope task (already lifetime-erased by the caller,
        /// which guarantees to drain the scope before returning) and asks
        /// the pool for a helper.
        pub(crate) fn push(self: &Arc<Self>, task: Task) {
            {
                let mut state = self.state.lock().unwrap();
                state.queue.push_back(task);
                self.wake.notify_all();
            }
            let shared = Arc::clone(self);
            let _ = pool().sender.send(Box::new(move || shared.help()));
        }

        /// Runs queued tasks until the queue is momentarily empty.
        fn help(&self) {
            loop {
                let task = {
                    let mut state = self.state.lock().unwrap();
                    match state.queue.pop_front() {
                        Some(t) => {
                            state.active += 1;
                            t
                        }
                        None => return,
                    }
                };
                self.finish_one(task);
            }
        }

        fn finish_one(&self, task: Task) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                self.panic.lock().unwrap().get_or_insert(payload);
            }
            let mut state = self.state.lock().unwrap();
            state.active -= 1;
            if state.active == 0 {
                self.wake.notify_all();
            }
        }

        /// Caller-side drain: works the queue and waits until every task
        /// (including ones spawned by running tasks) has finished, then
        /// propagates the first task panic, if any.
        pub(crate) fn drain(&self) {
            loop {
                let task = {
                    let mut state = self.state.lock().unwrap();
                    loop {
                        if let Some(t) = state.queue.pop_front() {
                            state.active += 1;
                            break Some(t);
                        }
                        if state.active == 0 {
                            break None;
                        }
                        // A running task may spawn more work; wake on
                        // either a new task or full completion.
                        state = self.wake.wait(state).unwrap();
                    }
                };
                match task {
                    Some(t) => self.finish_one(t),
                    None => break,
                }
            }
            if let Some(payload) = self.panic.lock().unwrap().take() {
                resume_unwind(payload);
            }
        }
    }
}

pub use pool::pool_thread_count;

/// Spawns a fire-and-forget task on the persistent pool (mirrors
/// `rayon::spawn`).
///
/// The task runs when a pool worker is free; there is no join handle and
/// no completion barrier. Long-lived background tasks (e.g. the tuning
/// service's speculative workers) each occupy one pool worker while they
/// run, but can never starve batch primitives: batch callers always help
/// with their own batches, so `par_iter` completes even with every pool
/// worker busy. On single-core hosts (zero pool workers) the task runs
/// inline, so spawned work always eventually executes.
///
/// A panicking task is caught and discarded so the pool worker survives
/// (the real crate aborts the process instead; with no process to
/// restart us here, a swallowed panic beats a silently shrinking pool).
/// Tasks that must surface failures should catch their own panics.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    pool::spawn_detached(Box::new(f));
}

/// Number of worker threads parallel operations may use (mirrors
/// `rayon::current_num_threads`).
///
/// Honors `RAYON_NUM_THREADS` like the real crate's global pool; the
/// variable is re-read on every call (only by the thread issuing the
/// parallel call — idle pool workers never touch the environment), so
/// tests can force serial execution for equivalence checks. Setting it
/// to 1 bypasses the pool entirely: every primitive runs inline.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results
/// (mirrors `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    pool::run_batch(vec![Box::new(|| ra = Some(a())), Box::new(|| rb = Some(b()))]);
    (ra.expect("join closure did not run"), rb.expect("join closure did not run"))
}

/// Structured task scope (mirrors `rayon::scope`).
///
/// Spawned tasks run on the persistent pool (the scoping thread helps)
/// and are all finished before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let shared = std::sync::Arc::new(pool::ScopeShared::new());
    let scope = Scope { shared: std::sync::Arc::clone(&shared), _marker: std::marker::PhantomData };
    // If `f` itself panics, the already-spawned tasks still borrow the
    // caller's stack: drain them before unwinding further.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
    shared.drain();
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Task spawner handed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    shared: std::sync::Arc<pool::ScopeShared>,
    _marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let shared = std::sync::Arc::clone(&self.shared);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let inner =
                Scope { shared: std::sync::Arc::clone(&shared), _marker: std::marker::PhantomData };
            body(&inner);
        });
        // SAFETY: `scope` drains every spawned task (panic path included)
        // before it returns, so the `'scope` borrows inside the closure
        // cannot outlive their referents.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.shared.push(task);
    }
}

/// How many elements each worker should get at minimum before a parallel
/// primitive bothers spawning threads.
const DEFAULT_MIN_LEN: usize = 2;

#[inline]
fn worker_count(len: usize, min_len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let by_grain = len / min_len.max(1);
    current_num_threads().min(by_grain).max(1)
}

/// Order-preserving parallel map over a slice.
fn par_map_slice<'a, T, R, F>(slice: &'a [T], min_len: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = worker_count(slice.len(), min_len);
    if workers <= 1 {
        return slice.iter().map(f).collect();
    }
    let chunk = slice.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(slice.len());
    out.resize_with(slice.len(), || None);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slice
        .chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|(input, output)| {
            Box::new(move || {
                for (slot, item) in output.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool::run_batch(tasks);
    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

/// Parallel for-each over disjoint mutable chunks.
fn par_for_each_chunks_mut<T, F>(slice: &mut [T], chunk: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let pieces = slice.len().div_ceil(chunk).max(1);
    let workers = worker_count(pieces, 1);
    if workers <= 1 || pieces <= 1 {
        for (i, c) in slice.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    // Hand each worker a contiguous run of whole chunks so at most
    // `workers` pool tasks exist no matter how fine the chunking is.
    let per_worker = pieces.div_ceil(workers);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slice
        .chunks_mut(per_worker * chunk)
        .enumerate()
        .map(|(g, group)| {
            Box::new(move || {
                for (i, c) in group.chunks_mut(chunk).enumerate() {
                    f(g * per_worker + i, c);
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool::run_batch(tasks);
}

/// `.par_iter()` on slices (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self, min_len: DEFAULT_MIN_LEN }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self, min_len: DEFAULT_MIN_LEN }
    }
}

/// `.par_iter_mut()` / `.par_chunks_mut()` on slices.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
        ParChunksMut { slice: self, chunk }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
        ParChunksMut { slice: self, chunk }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Lower bound on per-worker elements before threads spawn (mirrors
    /// `IndexedParallelIterator::with_min_len`).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { slice: self.slice, min_len: self.min_len, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_slice(self.slice, self.min_len, &|t| f(t));
    }
}

/// Mapped parallel iterator: terminal ops preserve input order.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects mapped values **in input order**.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_slice(self.slice, self.min_len, &self.f))
    }
}

/// Mutable parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        par_for_each_chunks_mut(
            self.slice,
            self.slice.len().div_ceil(current_num_threads().max(1)).max(1),
            &|_, chunk| {
                for item in chunk {
                    f(item);
                }
            },
        );
    }

    /// Pairs each element with its index, like rayon's
    /// `par_iter_mut().enumerate()`.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }
}

pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let chunk = self.slice.len().div_ceil(current_num_threads().max(1)).max(1);
        par_for_each_chunks_mut(self.slice, chunk, &|ci, items| {
            for (off, item) in items.iter_mut().enumerate() {
                f((ci * chunk + off, item));
            }
        });
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        par_for_each_chunks_mut(self.slice, self.chunk, &|_, c| f(c));
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { slice: self.slice, chunk: self.chunk }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        par_for_each_chunks_mut(self.slice, self.chunk, &|i, c| f((i, c)));
    }
}

pub mod prelude {
    //! One-stop imports (mirrors `rayon::prelude`).
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub mod iter {
    //! Namespace parity with the real crate.
    pub use super::{ParChunksMut, ParIter, ParIterMut, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_matches_serial_on_tiny_inputs() {
        for n in 0..5usize {
            let input: Vec<usize> = (0..n).collect();
            let out: Vec<usize> = input.par_iter().map(|&x| x + 1).collect();
            assert_eq!(out, (1..=n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![1i64; 1000];
        v.par_iter_mut().for_each(|x| *x += 41);
        assert!(v.iter().all(|&x| x == 42));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut v = vec![0usize; 517];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, (0..517).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_partitions_exactly() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn scope_joins_spawned_tasks() {
        let mut left = 0u64;
        let mut right = 0u64;
        super::scope(|s| {
            s.spawn(|_| left = 1);
            s.spawn(|_| right = 2);
        });
        assert_eq!((left, right), (1, 2));
    }

    #[test]
    fn parallel_map_is_deterministic_across_runs() {
        let input: Vec<f64> = (0..4096).map(|i| i as f64 * 0.37).collect();
        let run = || -> f64 {
            let parts: Vec<f64> = input.par_iter().map(|&x| x.sin()).collect();
            parts.iter().sum()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    /// The ROADMAP pool contract: parallel calls reuse one persistent set
    /// of worker threads instead of spawning fresh OS threads per call.
    /// Rust `ThreadId`s are never reused within a process, so with
    /// spawn-per-call the distinct non-caller ids observed across many
    /// calls would grow with every call; with the pool they are bounded
    /// by the pool size.
    #[test]
    fn worker_pool_persists_across_calls() {
        use std::collections::HashSet;
        let caller = std::thread::current().id();
        let mut observed: HashSet<std::thread::ThreadId> = HashSet::new();
        for _ in 0..8 {
            let input: Vec<u64> = (0..64).collect();
            let ids: Vec<std::thread::ThreadId> = input
                .par_iter()
                .map(|_| {
                    // Give helpers a chance to claim chunks so the test
                    // actually observes pool threads.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    std::thread::current().id()
                })
                .collect();
            observed.extend(ids.into_iter().filter(|&id| id != caller));
        }
        assert!(
            observed.len() <= super::pool_thread_count(),
            "saw {} distinct worker threads across 8 calls but the pool only has {} — \
             parallel calls are spawning fresh OS threads",
            observed.len(),
            super::pool_thread_count()
        );
    }

    /// A panicking task must propagate to the caller without wedging the
    /// pool for subsequent batches.
    #[test]
    fn task_panics_propagate_and_pool_survives() {
        let input: Vec<u64> = (0..256).collect();
        let boom = std::panic::catch_unwind(|| {
            let _: Vec<u64> =
                input.par_iter().map(|&x| if x == 137 { panic!("boom") } else { x }).collect();
        });
        assert!(boom.is_err(), "panic in a parallel task was swallowed");
        // The pool still works afterwards.
        let out: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_runs_detached_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            super::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // No join handle by design: poll with a generous deadline.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "spawned tasks never ran");
            std::thread::yield_now();
        }
        // Spawned tasks must not wedge the batch machinery.
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    /// A panicking spawned job must not kill its pool worker: later
    /// spawns and batches still run on the full pool.
    #[test]
    fn panicking_spawn_does_not_shrink_the_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        for _ in 0..super::pool_thread_count().max(1) + 1 {
            // On a zero-worker pool spawn runs inline and the panic
            // reaches the caller (documented); catch it so the test
            // exercises both modes.
            let _ = std::panic::catch_unwind(|| super::spawn(|| panic!("boom")));
        }
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            super::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "pool lost its workers to panicking spawns"
            );
            std::thread::yield_now();
        }
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let outer: Vec<u64> = (0..8).collect();
        let sums: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..100).map(|i| o * 100 + i).collect();
                let mapped: Vec<u64> = inner.par_iter().map(|&x| x * 2).collect();
                mapped.iter().sum()
            })
            .collect();
        let expect: Vec<u64> =
            (0..8u64).map(|o| (0..100).map(|i| (o * 100 + i) * 2).sum()).collect();
        assert_eq!(sums, expect);
    }
}
