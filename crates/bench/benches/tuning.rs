//! Criterion benchmarks of the auto-tuning machinery: GBT training and
//! prediction, space enumeration/sampling, searcher proposal rounds, and
//! full (small-budget) tuning loops — the costs that determine how fast
//! the tuner itself runs, independent of kernel quality.

use criterion::{criterion_group, criterion_main, Criterion};
use iolb_autotune::cost_model::GbtCostModel;
use iolb_autotune::engine::{tune, TuneParams};
use iolb_autotune::gbt::{Gbrt, GbrtParams};
use iolb_autotune::search::walk::ParallelRandomWalk;
use iolb_autotune::search::{History, Searcher};
use iolb_autotune::{ConfigSpace, Measurer, NoModel};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn gbt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let rows: Vec<Vec<f64>> =
        (0..200).map(|_| (0..14).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect();
    let targets: Vec<f64> = rows.iter().map(|r| r[0] * r[0] + r[3] - r[7]).collect();
    let mut group = c.benchmark_group("gbt");
    group.sample_size(20);
    group.bench_function("fit-200x14", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut r))
        })
    });
    let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng);
    group.bench_function("predict", |b| b.iter(|| black_box(model.predict(&rows[7]))));
    group.finish();
}

fn space_ops(c: &mut Criterion) {
    let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
    let mut group = c.benchmark_group("config-space");
    group.sample_size(10);
    for pruned in [false, true] {
        let label = if pruned { "pruned" } else { "full" };
        let space = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, pruned);
        group.bench_function(format!("count-{label}"), |b| b.iter(|| black_box(space.count())));
        group.bench_function(format!("sample-{label}"), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(space.sample(&mut rng, 256)))
        });
    }
    group.finish();
}

fn search_round(c: &mut Criterion) {
    let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
    let space = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, true);
    let mut group = c.benchmark_group("search");
    group.sample_size(20);
    group.bench_function("walk-propose-round", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let h = History::new();
        let mut s = ParallelRandomWalk::new();
        b.iter(|| black_box(s.propose(&space, &NoModel, &h, 8, &mut rng)))
    });
    group.bench_function("tune-32-measurements", |b| {
        let measurer = Measurer::new(DeviceSpec::v100(), shape, TileKind::Direct);
        b.iter(|| {
            let mut model = GbtCostModel::default();
            let mut s = ParallelRandomWalk::new();
            black_box(tune(
                &space,
                &measurer,
                &mut model,
                &mut s,
                TuneParams { max_measurements: 32, batch: 8, patience: 32, seed: 5 },
            ))
        })
    });
    group.finish();
}

fn simulator(c: &mut Criterion) {
    use iolb_dataflow::config::ScheduleConfig;
    use iolb_dataflow::direct_kernel;
    use iolb_gpusim::simulate;
    use iolb_tensor::layout::Layout;
    let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
    let cfg = ScheduleConfig {
        x: 14,
        y: 14,
        z: 16,
        nxt: 7,
        nyt: 7,
        nzt: 4,
        sb_bytes: 32 * 1024,
        layout: Layout::Chw,
    };
    let device = DeviceSpec::gtx1080ti();
    c.bench_function("simulate-direct-kernel", |b| {
        b.iter(|| {
            let k = direct_kernel(&shape, &cfg);
            black_box(simulate(&device, &k).unwrap())
        })
    });
}

criterion_group!(benches, gbt, space_ops, search_round, simulator);
criterion_main!(benches);
