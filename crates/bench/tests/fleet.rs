//! Anchored serving across a daemon *fleet* (ISSUE 8, satellite): two
//! resident TCP daemons are warmed on exact shapes, then in-bucket
//! jittered traffic is consistent-hash-routed across both — every
//! request is answered from an anchor bucket with zero fresh
//! measurements, and the per-daemon `iolb_anchor_hits_total` telemetry
//! counters aggregate to the fleet-wide anchored total.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};

const TUNE_CACHE: &str = env!("CARGO_BIN_EXE_tune-cache");

/// Two exact 1x1 layers and their in-bucket jitters (anchor floor 16:
/// cin 32 jitters to 30 inside the 32 bucket; extents at or below the
/// floor stay exact).
const EXACT: &str = "32,14,14,16,1,1,1,0;16,14,14,32,1,1,1,0";
const JIT: &str = "30,14,14,16,1,1,1,0;16,14,14,30,1,1,1,0";

fn unique_tag() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{}-{nanos}", std::process::id())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iolb-fleet-anchor-{tag}-{}", unique_tag()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fleet daemon child plus the TCP address it actually bound (`:0`
/// picks a free port, printed on the "listening on tcp" line). Killed
/// on drop so a failed assertion never leaks a resident process.
struct FleetDaemon {
    child: Option<Child>,
    addr: String,
    /// Keeps the stdout pipe open (the daemon prints nothing of volume
    /// after startup, so an unread pipe cannot block it).
    _stdout: BufReader<ChildStdout>,
}

impl FleetDaemon {
    fn spawn(dir: &Path) -> Self {
        let mut child = Command::new(TUNE_CACHE)
            .arg("serve")
            .arg(dir)
            .args([
                "--tcp",
                "127.0.0.1:0",
                "--budget",
                "8",
                "--merge-interval-ms",
                "50",
                "--transfer-gap-permille",
                "1000000",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn tune-cache serve --tcp");
        let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read daemon stdout");
            assert!(n > 0, "daemon exited before announcing its TCP address");
            if let Some(addr) = line.trim().strip_prefix("listening on tcp ") {
                break addr.to_string();
            }
        };
        Self { child: Some(child), addr, _stdout: reader }
    }

    fn stop_and_wait(mut self) {
        let status = Command::new(TUNE_CACHE)
            .arg("stop")
            .arg(format!("tcp:{}", self.addr))
            .status()
            .expect("run tune-cache stop");
        assert!(status.success(), "tune-cache stop failed: {status}");
        let mut child = self.child.take().expect("daemon already taken");
        let status = child.wait().expect("wait for daemon");
        assert!(status.success(), "daemon exited non-zero: {status}");
    }
}

impl Drop for FleetDaemon {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs `tune-net --fleet <spec> --json` and returns the JSON line.
fn fleet_client_json(fleet: &str, layers: &str) -> String {
    let out = Command::new(TUNE_CACHE)
        .args(["tune-net", "--layers", layers, "--fleet", fleet, "--json"])
        .output()
        .expect("run tune-net --fleet --json");
    assert!(out.status.success(), "tune-net --fleet failed: {}", out.status);
    String::from_utf8(out.stdout).expect("utf8 client output").trim().to_string()
}

/// One named counter out of a daemon's Prometheus exposition (0 when
/// the daemon has not emitted it yet).
fn scrape_counter(addr: &str, name: &str) -> u64 {
    let out = Command::new(TUNE_CACHE)
        .arg("metrics")
        .arg(format!("tcp:{addr}"))
        .output()
        .expect("run tune-cache metrics");
    assert!(out.status.success(), "tune-cache metrics failed: {}", out.status);
    String::from_utf8(out.stdout)
        .expect("utf8 metrics")
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")).map(|v| v.parse().expect("counter u64")))
        .unwrap_or(0)
}

/// ISSUE 8 acceptance at fleet scale: jittered traffic routed across
/// two daemons is served entirely from anchor buckets — zero fresh
/// measurements anywhere — and the anchored-hit telemetry aggregated
/// across the peers equals the fleet-wide anchored total.
#[test]
fn jittered_traffic_is_served_anchored_across_the_fleet() {
    let dir1 = temp_dir("d1");
    let dir2 = temp_dir("d2");
    let d1 = FleetDaemon::spawn(&dir1);
    let d2 = FleetDaemon::spawn(&dir2);
    let fleet = format!("tcp:{},tcp:{}", d1.addr, d2.addr);

    // Warm *each* daemon on the exact shapes (hermetic tuning makes the
    // two stores bit-identical), so whichever peer a jittered
    // fingerprint hashes to holds its donor.
    for addr in [&d1.addr, &d2.addr] {
        let warm = fleet_client_json(&format!("tcp:{addr}"), EXACT);
        assert!(warm.contains("\"fresh\":16"), "warm run must tune fresh: {warm}");
    }

    // Jittered replay across the whole fleet: all anchored, no fresh
    // measurements, no re-tunes (the gap bound is wide open), and the
    // routing actually spanned both live peers.
    let jit = fleet_client_json(&fleet, JIT);
    for field in [
        "\"fresh\":0",
        "\"anchored\":2",
        "\"retunes\":0",
        "\"hits\":0",
        "\"anchored_hit_rate\":1",
        "\"peers_live\":2",
    ] {
        assert!(jit.contains(field), "expected {field} in fleet jittered replay: {jit}");
    }

    // The per-peer telemetry counters aggregate to the fleet total.
    let anchored_total: u64 = [&d1.addr, &d2.addr]
        .iter()
        .map(|addr| scrape_counter(addr, "iolb_anchor_hits_total"))
        .sum();
    assert_eq!(anchored_total, 2, "fleet-wide anchored hits must aggregate across peers");
    let retunes_total: u64 = [&d1.addr, &d2.addr]
        .iter()
        .map(|addr| scrape_counter(addr, "iolb_transfer_retunes_total"))
        .sum();
    assert_eq!(retunes_total, 0, "wide-open gap bound must admit every transfer");

    d1.stop_and_wait();
    d2.stop_and_wait();
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
}
