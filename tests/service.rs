//! ISSUE 3 acceptance gates for the tuning service:
//!
//! * **drained == eager** — after the background queue drains,
//!   `tune_or_wait` for every layer × algorithm candidate of a
//!   registered network performs zero new simulator measurements and
//!   returns the same best configs (bit-identical costs) as eager
//!   `tune_with_store` runs of the same workloads;
//! * **eviction keeps the best** — applying any eviction policy never
//!   removes a workload's best-cost record, and serving after eviction
//!   still replays without measuring;
//! * the service round-trips through its shard directory: save, reopen,
//!   serve — still zero measurements, still the same configs.

use conv_iolb::autotune::plan::{algo_candidates, tuner_setup};
use conv_iolb::autotune::tune_with_store;
use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::cnn::{ConvLayer, Network};
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::RecordStore;
use conv_iolb::service::{EvictionPolicy, ServeSource, ServiceConfig, ShardedStore, TuningService};

const BUDGET: usize = 16;

fn device() -> DeviceSpec {
    DeviceSpec::v100()
}

/// A small mixed network: 1x1 layers (direct only) plus a 3x3 layer
/// that exercises all three algorithm candidates.
fn toy_network() -> Network {
    Network {
        name: "toy",
        layers: vec![
            ConvLayer::new("a", ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0)),
            ConvLayer::new("b", ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0)),
            ConvLayer::new("c", ConvShape::square(16, 14, 16, 3, 1, 1)),
        ],
    }
}

fn service_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        budget_per_workload: BUDGET,
        background_budget: 100_000,
        workers,
        speculate_neighbors: false,
        seed: TUNER_SEED,
        ..ServiceConfig::default()
    }
}

/// The eager reference: `tune_with_store` on a fresh store, the exact
/// run a service-less consumer would perform for one workload.
fn eager(shape: &ConvShape, kind: TileKind) -> Option<(RecordStore, f64)> {
    let mut store = RecordStore::new();
    let mut s = tuner_setup(shape, kind, &device(), BUDGET, TUNER_SEED);
    let out = tune_with_store(
        &s.space,
        &s.measurer,
        &mut s.model,
        &mut s.searcher,
        s.params,
        &mut store,
    )?;
    Some((store, out.result.best_ms))
}

/// The ISSUE 3 pinned test: drained service == eager tuning, with zero
/// new measurements at serve time.
#[test]
fn drained_service_matches_eager_tuning_with_zero_measurements() {
    let net = toy_network();
    // Workers race on the pool AND the drain helps: the contract must
    // hold regardless of who tuned what.
    let service = TuningService::new(ShardedStore::new(), service_config(2));
    let enqueued = service.register_network(&net, &device());
    // 2 direct-only layers + 1 layer with direct + two Winograd variants.
    assert_eq!(enqueued, 5);
    service.drain();
    let drained = service.stats();
    assert_eq!(drained.background_tuned + drained.infeasible, 5);
    assert!(drained.fresh_measurements > 0);

    for layer in &net.layers {
        for (kind, _) in algo_candidates(&layer.shape) {
            let served = service.tune_or_wait(&layer.shape, kind, &device());
            match eager(&layer.shape, kind) {
                Some((eager_store, eager_best_ms)) => {
                    let served = served.expect("service missed a feasible workload");
                    assert_eq!(served.source, ServeSource::ShardHit, "drained service must hit");
                    assert_eq!(served.fresh_measurements, 0);
                    assert_eq!(
                        served.cost_ms.to_bits(),
                        eager_best_ms.to_bits(),
                        "layer {} {kind:?}: served cost {} != eager cost {}",
                        layer.name,
                        served.cost_ms,
                        eager_best_ms
                    );
                    // Same best config as the eager store's canonical best.
                    let wl = conv_iolb::records::Workload::new(
                        layer.shape,
                        kind,
                        device().name,
                        device().smem_per_sm,
                    );
                    let eager_best = &eager_store.top_k(&wl, 1)[0];
                    assert_eq!(served.config, eager_best.config);
                }
                None => assert!(served.is_none()),
            }
        }
    }
    // The serve pass itself measured nothing.
    let after = service.stats();
    assert_eq!(after.fresh_measurements, drained.fresh_measurements);
    assert_eq!(after.inline_tuned, 0);
}

/// Eviction never removes a workload's best-cost record, and a served
/// (hence hot) store keeps replaying bit-identically after eviction.
#[test]
fn eviction_preserves_every_best_record() {
    let net = toy_network();
    let service = TuningService::new(ShardedStore::new(), service_config(0));
    service.register_network(&net, &device());
    service.drain();
    let full = service.merged_store();
    let bests: Vec<(String, f64)> =
        full.entries().map(|(fp, recs)| (fp.to_string(), recs[0].cost_ms)).collect();
    assert!(!bests.is_empty());
    // Brutal policy: one record per workload.
    let dropped = service.evict(&EvictionPolicy { max_records: 1, top_k: 1 });
    assert!(dropped > 0);
    let evicted = service.merged_store();
    for (fp, best_cost) in &bests {
        let recs = evicted.records(fp);
        assert!(!recs.is_empty(), "eviction removed workload {fp} entirely");
        assert_eq!(
            recs[0].cost_ms.to_bits(),
            best_cost.to_bits(),
            "eviction lost the best record of {fp}"
        );
    }
    // Serving still replays without measuring.
    let measured_before = service.stats().fresh_measurements;
    for layer in &net.layers {
        for (kind, _) in algo_candidates(&layer.shape) {
            if let Some(out) = service.tune_or_wait(&layer.shape, kind, &device()) {
                assert_eq!(out.fresh_measurements, 0);
            }
        }
    }
    assert_eq!(service.stats().fresh_measurements, measured_before);
}

/// Save → reopen → serve: the shard directory carries everything.
#[test]
fn service_round_trips_through_its_shard_directory() {
    let net = toy_network();
    let dir = std::env::temp_dir().join(format!("iolb-service-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let costs: Vec<u64> = {
        let service = TuningService::new(ShardedStore::new(), service_config(0));
        service.register_network(&net, &device());
        service.drain();
        service.save(&dir).unwrap();
        net.layers
            .iter()
            .flat_map(|l| {
                algo_candidates(&l.shape).into_iter().filter_map(|(kind, _)| {
                    service.tune_or_wait(&l.shape, kind, &device()).map(|o| o.cost_ms.to_bits())
                })
            })
            .collect()
    };
    let (reopened, report) = TuningService::open(&dir, service_config(0)).unwrap();
    assert!(report.is_clean(), "warnings: {:?}", report.warnings);
    // Counters are restored from the sidecar (telemetry survives the
    // restart); serving must not add to them.
    let restored = reopened.stats().fresh_measurements;
    assert!(restored > 0, "sidecar counters restored on open");
    let mut reopened_costs = Vec::new();
    for layer in &net.layers {
        for (kind, _) in algo_candidates(&layer.shape) {
            if let Some(out) = reopened.tune_or_wait(&layer.shape, kind, &device()) {
                assert_eq!(out.source, ServeSource::ShardHit);
                assert_eq!(out.fresh_measurements, 0);
                reopened_costs.push(out.cost_ms.to_bits());
            }
        }
    }
    assert_eq!(costs, reopened_costs);
    assert_eq!(
        reopened.stats().fresh_measurements,
        restored,
        "reopened service never measured while serving"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
