//! Batch tuning sessions, end to end: submit a whole network —
//! duplicate layer shapes and all — as ONE session, and compare the
//! work done against the per-layer request path.
//!
//! ```console
//! $ cargo run --release --example batch
//! ```
//!
//! The same flow is available from the command line:
//! `tune-cache tune-net --layers ... -o shards/` — and because the
//! shard directory is guarded by an advisory file lock, any number of
//! `tune-net` processes may append to one directory concurrently.

use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::service::{ServiceConfig, ShardedStore, TuneRequest, TuningService};

fn main() {
    let device = DeviceSpec::v100();
    // A VGG-flavored toy: 6 layers, only 3 distinct shapes (stacked
    // blocks repeat their geometry). 1x1 layers keep the demo fast.
    let a = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let b = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
    let c = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
    let layers = [a, b, a, c, a, b];

    let config = ServiceConfig {
        budget_per_workload: 16,
        workers: 2,
        speculate_neighbors: true,
        seed: TUNER_SEED,
        ..ServiceConfig::default()
    };

    // Path 1 — the batch session: one submit, one wait.
    let service = TuningService::new(ShardedStore::new(), config);
    let requests: Vec<TuneRequest> =
        layers.iter().map(|&shape| TuneRequest::bare(shape, TileKind::Direct)).collect();
    let handle = service.submit(&requests, &device);
    println!(
        "session {}: {} request(s) -> {} unique workload(s) ({} rode along for free)",
        handle.group(),
        handle.request_count(),
        handle.unique_workloads(),
        handle.request_count() - handle.unique_workloads()
    );
    let results = handle.wait();
    let session_stats = service.stats();
    println!(
        "batch: {} queue job(s), {} fresh measurement(s), {} tuned inline, {} deduped",
        session_stats.batch_enqueued,
        session_stats.fresh_measurements,
        session_stats.inline_tuned,
        session_stats.batch_deduped
    );
    for (shape, result) in layers.iter().zip(&results) {
        let result = result.as_ref().expect("feasible layer");
        println!("  {:>10.6} ms  {:?}  {shape}", result.cost_ms, result.source);
    }

    // Path 2 — the per-layer request path over a registered network
    // (what whole-network serving looked like before sessions).
    let per_layer = TuningService::new(ShardedStore::new(), config);
    per_layer.register_network(&layers.to_vec(), &device);
    per_layer.drain();
    let mut per_layer_costs = Vec::new();
    for shape in &layers {
        let out = per_layer.tune_or_wait(shape, TileKind::Direct, &device).unwrap();
        per_layer_costs.push(out.cost_ms);
    }
    let loop_stats = per_layer.stats();
    let loop_jobs = loop_stats.enqueued + loop_stats.speculative_enqueued;
    println!(
        "per-layer: {} queue job(s) (speculation included), {} fresh measurement(s)",
        loop_jobs, loop_stats.fresh_measurements
    );

    // The acceptance claim, asserted so this example doubles as a gate:
    // strictly less work, bit-identical answers.
    assert!(session_stats.batch_enqueued < loop_jobs);
    assert!(session_stats.fresh_measurements < loop_stats.fresh_measurements);
    for (result, reference) in results.iter().zip(&per_layer_costs) {
        assert_eq!(result.as_ref().unwrap().cost_ms.to_bits(), reference.to_bits());
    }
    println!(
        "batch did {}x fewer measurements for bit-identical configs",
        loop_stats.fresh_measurements as f64 / session_stats.fresh_measurements.max(1) as f64
    );

    // Re-serving the network is pure replay: zero measurements.
    let replay = service.submit(&requests, &device).wait();
    assert_eq!(service.stats().fresh_measurements, session_stats.fresh_measurements);
    assert!(replay.iter().flatten().all(|r| r.fresh_measurements == 0));
    println!("second session replayed everything: 0 fresh measurements");
}
