//! Offline stand-in for the `rand` crate, exposing the subset of the 0.8
//! API this workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`RngCore`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be vendored; this crate keeps the call sites
//! source-compatible. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — deterministic, portable
//! across platforms, and statistically strong enough for property tests
//! and stochastic tuning. It is **not** cryptographically secure, which
//! matches how the workspace uses it (seeded, reproducible simulation).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! // Deterministic given the seed — the property all tuning rests on.
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let x: u64 = a.gen_range(0..100);
//! assert_eq!(x, b.gen_range(0..100));
//! assert!(x < 100);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// the real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, src) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the standard distribution (mirrors
/// `rand::distributions::Standard`, trait-shaped for a shim).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

impl Standard for u32 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add(bounded_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return <$t>::sample_wide(rng);
                }
                lo.wrapping_add(bounded_u128(rng, span) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Draws uniformly from `[0, span)` by rejection, avoiding modulo bias.
#[inline]
fn bounded_u128(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Zone rejection on 64-bit draws covers every span this workspace
    // uses (all are < 2^64).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Full-width integer sampling for degenerate `lo..=MAX` ranges.
trait SampleWide {
    fn sample_wide(rng: &mut impl RngCore) -> Self;
}

macro_rules! sample_wide {
    ($($t:ty),*) => {$(
        impl SampleWide for $t {
            fn sample_wide(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

sample_wide!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
    /// irrelevant here, since every consumer treats the stream as opaque
    /// and only requires determinism given the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports (mirrors `rand::prelude`).
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: i64 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(8);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x as usize / 10 - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn float_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
