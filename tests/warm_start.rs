//! ISSUE 2 acceptance gates for the tuning-record store:
//!
//! * tuning the same layer twice against one store performs strictly
//!   fewer simulator measurements on the second run and returns a
//!   configuration whose cost is <= the first run's best;
//! * store files written by one run load bit-identically in another
//!   (deterministic, canonical serialization).

use conv_iolb::autotune::search::walk::ParallelRandomWalk;
use conv_iolb::autotune::{
    tune_with_store, ConfigSpace, GbtCostModel, Measurer, StoreTuneResult, TuneParams,
};
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::RecordStore;

fn tune_once(store: &mut RecordStore) -> StoreTuneResult {
    let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
    let device = DeviceSpec::v100();
    let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
    let measurer = Measurer::new(device, shape, TileKind::Direct);
    // patience == budget: both runs spend the full budget, so "strictly
    // fewer fresh measurements" is exactly "at least one cache hit".
    let params = TuneParams { max_measurements: 48, batch: 8, patience: 48, seed: 0xA7E };
    tune_with_store(
        &space,
        &measurer,
        &mut GbtCostModel::default(),
        &mut ParallelRandomWalk::new(),
        params,
        store,
    )
    .expect("tunable layer")
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("iolb-acceptance-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn second_run_measures_strictly_less_and_never_regresses() {
    let path = temp_path("warm");
    // Cold run against an empty store; persist the store to disk.
    let mut store = RecordStore::new();
    let cold = tune_once(&mut store);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.fresh_measurements, cold.result.measurements);
    store.save(&path).expect("save");

    // Warm run against the *reloaded* store — the full persist cycle.
    let (mut reloaded, report) = RecordStore::load(&path).expect("load");
    assert!(report.is_clean(), "skipped lines: {:?}", report.skipped);
    let warm = tune_once(&mut reloaded);
    std::fs::remove_file(&path).ok();

    assert!(warm.warm_seeded > 0, "no warm-start seeds found");
    assert!(warm.cache_hits > 0, "no measurement was replayed");
    assert!(
        warm.fresh_measurements < cold.fresh_measurements,
        "second run must perform strictly fewer measurements: {} vs {}",
        warm.fresh_measurements,
        cold.fresh_measurements
    );
    assert!(
        warm.result.best_ms <= cold.result.best_ms,
        "warm-start regressed: {} vs {}",
        warm.result.best_ms,
        cold.result.best_ms
    );
}

#[test]
fn stores_serialize_bit_identically_across_runs() {
    // Two independent cold runs of the same tuning problem must produce
    // byte-identical store files.
    let mut a = RecordStore::new();
    let mut b = RecordStore::new();
    tune_once(&mut a);
    tune_once(&mut b);
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "two identical runs wrote different stores");

    // And a save -> load -> save cycle is the identity on the bytes.
    let pa = temp_path("bits-a");
    let pb = temp_path("bits-b");
    a.save(&pa).expect("save");
    let (loaded, report) = RecordStore::load(&pa).expect("load");
    assert!(report.is_clean());
    loaded.save(&pb).expect("re-save");
    let bytes_a = std::fs::read(&pa).expect("read a");
    let bytes_b = std::fs::read(&pb).expect("read b");
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "save/load/save changed the file");
}

#[test]
fn store_backed_network_tuning_is_incremental() {
    use conv_iolb::cnn::inference::time_network_with_store;
    use conv_iolb::cnn::layers::{ConvLayer, Network};
    let net = Network {
        name: "mini",
        layers: vec![
            ConvLayer::new("c1", ConvShape::new(16, 28, 28, 8, 1, 1, 1, 0)),
            ConvLayer::new("c2", ConvShape::new(8, 28, 28, 16, 1, 1, 1, 0)),
        ],
    };
    let device = DeviceSpec::v100();
    let mut store = RecordStore::new();
    let (t1, eco1) = time_network_with_store(&net, &device, 12, &mut store);
    let (t2, eco2) = time_network_with_store(&net, &device, 12, &mut store);
    assert!(t1.ours_ms.is_finite() && t2.ours_ms.is_finite());
    assert!(eco2.fresh_measurements < eco1.fresh_measurements);
    assert!(t2.ours_ms <= t1.ours_ms + 1e-12);
}
