//! Configuration spaces (paper §6.2, Table 1).
//!
//! The space spans the output tile `(x, y, z)` (factor triples), the thread
//! split `(N_xt, N_yt, N_zt)` (factors of the tile), the per-block shared
//! memory `S_b` and the layout. Two variants exist:
//!
//! * the **full** space — every configuration passing the structural
//!   constraints (what a TVM-style tuner searches);
//! * the **pruned** space — additionally inside the optimality-condition
//!   band `z <= sqrt(S_b/R)`, `xy <= sqrt(S_b R)` (what the paper's
//!   auto-tuning engine searches; Table 2 reports the resulting 20–50%
//!   compression).

use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::{divisors, TileKind};
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_tensor::layout::Layout;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shared-memory size choices offered to the tuner (bytes).
pub const SB_CHOICES: [u32; 6] = [8 * 1024, 16 * 1024, 24 * 1024, 32 * 1024, 40 * 1024, 48 * 1024];

/// A convolution's schedule search space on a given device.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    pub shape: ConvShape,
    pub kind: TileKind,
    /// Device shared memory per SM (bounds `S_b`).
    pub ssm_bytes: u32,
    /// Whether the optimality-condition pruning is applied.
    pub pruned: bool,
    /// Fused epilogue whose tiling constraints the space honours.
    pub epilogue: Epilogue,
    xs: Vec<usize>,
    ys: Vec<usize>,
    zs: Vec<usize>,
    sbs: Vec<u32>,
}

impl ConfigSpace {
    /// Builds the space. For Winograd kinds, tile dims are restricted to
    /// multiples of `e` dividing the `e`-padded output extent (ragged
    /// edges run as padded tiles).
    pub fn new(shape: ConvShape, kind: TileKind, ssm_bytes: u32, pruned: bool) -> Self {
        Self::fused(shape, kind, ssm_bytes, pruned, Epilogue::None)
    }

    /// The search space of a fused chain: a pool epilogue additionally
    /// restricts output tiles to multiples of the pool window `k` (so a
    /// block's output region pools entirely in registers — the fused
    /// executor never sees a window that straddles blocks). With
    /// [`Epilogue::None`] or [`Epilogue::Relu`] this is exactly
    /// [`new`](Self::new)'s space: relu is pointwise and constrains
    /// nothing.
    pub fn fused(
        shape: ConvShape,
        kind: TileKind,
        ssm_bytes: u32,
        pruned: bool,
        epilogue: Epilogue,
    ) -> Self {
        let e = match kind {
            TileKind::Direct => 1,
            TileKind::Winograd(t) => t.e,
        };
        // Tiles must respect both the Winograd e-grid and the pool
        // k-grid: multiples of lcm(e, k).
        let step = match epilogue {
            Epilogue::ReluPool { k } => e / gcd(e, k) * k,
            Epilogue::None | Epilogue::Relu => e,
        };
        let (hp, wp) = iolb_dataflow::config::padded_out(&shape, kind);
        let keep = |d: &usize| (*d).is_multiple_of(step);
        let xs: Vec<usize> = divisors(hp).into_iter().filter(keep).collect();
        let ys: Vec<usize> = divisors(wp).into_iter().filter(keep).collect();
        let zs = divisors(shape.cout);
        let sbs: Vec<u32> = SB_CHOICES.iter().copied().filter(|&s| 2 * s <= ssm_bytes).collect();
        Self { shape, kind, ssm_bytes, pruned, epilogue, xs, ys, zs, sbs }
    }

    /// Whether the space offers at least one tile choice on every
    /// dimension — the fusion gate's structural check: a pool window
    /// that shares no divisors with the padded output extent empties
    /// `xs`/`ys` and the chain cannot be tuned fused at all.
    pub fn tile_choices_nonempty(&self) -> bool {
        !self.xs.is_empty() && !self.ys.is_empty() && !self.zs.is_empty() && !self.sbs.is_empty()
    }

    /// Membership check for this space's constraint set: the full (TVM)
    /// space applies only the *structural* template constraints — whether
    /// a tile actually fits its shared-memory allocation is discovered at
    /// measurement time, exactly as TVM discovers compile failures; the
    /// pruned (ATE) space additionally applies the footprint check and the
    /// optimality-condition band.
    fn admits(&self, cfg: &ScheduleConfig) -> bool {
        if self.pruned {
            cfg.validate(&self.shape, self.kind, self.ssm_bytes, true).is_ok()
        } else {
            cfg.validate_structural(&self.shape, self.kind, self.ssm_bytes).is_ok()
        }
    }

    /// Whether a configuration belongs to this space.
    pub fn contains(&self, cfg: &ScheduleConfig) -> bool {
        self.xs.contains(&cfg.x)
            && self.ys.contains(&cfg.y)
            && self.zs.contains(&cfg.z)
            && self.sbs.contains(&cfg.sb_bytes)
            && self.admits(cfg)
    }

    /// Iterates every valid configuration. The visitor returns `true` to
    /// continue, `false` to stop early.
    pub fn for_each(&self, mut f: impl FnMut(&ScheduleConfig) -> bool) {
        for &x in &self.xs {
            for &y in &self.ys {
                for &z in &self.zs {
                    for &sb in &self.sbs {
                        for &layout in &Layout::ALL {
                            for &nxt in &divisors(x) {
                                for &nyt in &divisors(y) {
                                    for &nzt in &divisors(z) {
                                        let cfg = ScheduleConfig {
                                            x,
                                            y,
                                            z,
                                            nxt,
                                            nyt,
                                            nzt,
                                            sb_bytes: sb,
                                            layout,
                                        };
                                        if self.admits(&cfg) && !f(&cfg) {
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Exact size of the space (Table 2's "Size of Search Space" column).
    pub fn count(&self) -> u64 {
        let mut n = 0u64;
        self.for_each(|_| {
            n += 1;
            true
        });
        n
    }

    /// Uniformly-flavoured random sample (dimension-wise uniform with
    /// rejection on validity). Returns `None` if `max_tries` rejections
    /// occur (a practically-empty space).
    pub fn sample(&self, rng: &mut impl Rng, max_tries: usize) -> Option<ScheduleConfig> {
        for _ in 0..max_tries {
            let x = *self.xs.choose(rng)?;
            let y = *self.ys.choose(rng)?;
            let z = *self.zs.choose(rng)?;
            let nxt = *divisors(x).choose(rng)?;
            let nyt = *divisors(y).choose(rng)?;
            let nzt = *divisors(z).choose(rng)?;
            let sb_bytes = *self.sbs.choose(rng)?;
            let layout = *Layout::ALL.choose(rng)?;
            let cfg = ScheduleConfig { x, y, z, nxt, nyt, nzt, sb_bytes, layout };
            if self.admits(&cfg) {
                return Some(cfg);
            }
        }
        None
    }

    /// A random neighbour of `cfg`: one dimension moved to an adjacent
    /// choice (the random-walk step of §6.2). Falls back to a fresh sample
    /// if no valid neighbour is found quickly.
    pub fn neighbor(&self, cfg: &ScheduleConfig, rng: &mut impl Rng) -> ScheduleConfig {
        for _ in 0..64 {
            let mut next = *cfg;
            match rng.gen_range(0..8) {
                0 => next.x = adjacent(&self.xs, cfg.x, rng),
                1 => next.y = adjacent(&self.ys, cfg.y, rng),
                2 => next.z = adjacent(&self.zs, cfg.z, rng),
                3 => next.nxt = adjacent(&divisors(next.x), cfg.nxt, rng),
                4 => next.nyt = adjacent(&divisors(next.y), cfg.nyt, rng),
                5 => next.nzt = adjacent(&divisors(next.z), cfg.nzt, rng),
                6 => next.sb_bytes = adjacent(&self.sbs, cfg.sb_bytes, rng),
                _ => next.layout = *Layout::ALL.choose(rng).unwrap(),
            }
            // Tile moves can invalidate the thread split; re-legalise.
            if !next.x.is_multiple_of(next.nxt) {
                next.nxt = 1;
            }
            if !next.y.is_multiple_of(next.nyt) {
                next.nyt = 1;
            }
            if !next.z.is_multiple_of(next.nzt) {
                next.nzt = 1;
            }
            if next != *cfg && self.admits(&next) {
                return next;
            }
        }
        self.sample(rng, 256).unwrap_or(*cfg)
    }

    /// Crossover of two parents (for the genetic searcher): each dimension
    /// drawn from either parent, re-legalised.
    pub fn crossover(
        &self,
        a: &ScheduleConfig,
        b: &ScheduleConfig,
        rng: &mut impl Rng,
    ) -> ScheduleConfig {
        for _ in 0..32 {
            let pick = |rng: &mut dyn rand::RngCore| rng.gen_bool(0.5);
            let mut child = ScheduleConfig {
                x: if pick(rng) { a.x } else { b.x },
                y: if pick(rng) { a.y } else { b.y },
                z: if pick(rng) { a.z } else { b.z },
                nxt: if pick(rng) { a.nxt } else { b.nxt },
                nyt: if pick(rng) { a.nyt } else { b.nyt },
                nzt: if pick(rng) { a.nzt } else { b.nzt },
                sb_bytes: if pick(rng) { a.sb_bytes } else { b.sb_bytes },
                layout: if pick(rng) { a.layout } else { b.layout },
            };
            if !child.x.is_multiple_of(child.nxt) {
                child.nxt = 1;
            }
            if !child.y.is_multiple_of(child.nyt) {
                child.nyt = 1;
            }
            if !child.z.is_multiple_of(child.nzt) {
                child.nzt = 1;
            }
            if self.admits(&child) {
                return child;
            }
        }
        self.neighbor(a, rng)
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Moves one step up or down inside an ascending choice list; stays put at
/// the ends when the step would fall off.
fn adjacent<T: Copy + PartialEq>(choices: &[T], current: T, rng: &mut impl Rng) -> T {
    let Some(pos) = choices.iter().position(|&c| c == current) else {
        return choices[rng.gen_range(0..choices.len())];
    };
    let up = rng.gen_bool(0.5);
    let next = if up { (pos + 1).min(choices.len() - 1) } else { pos.saturating_sub(1) };
    choices[next]
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::shapes::WinogradTile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SSM: u32 = 96 * 1024;

    fn shape() -> ConvShape {
        ConvShape::square(64, 28, 32, 3, 1, 1)
    }

    #[test]
    fn pruned_space_is_strict_subset() {
        let full = ConfigSpace::new(shape(), TileKind::Direct, SSM, false);
        let pruned = ConfigSpace::new(shape(), TileKind::Direct, SSM, true);
        let nf = full.count();
        let np = pruned.count();
        assert!(np < nf, "pruned {np} not below full {nf}");
        assert!(np > 0);
        // Table 2 reports 20-55% compression; accept a generous band.
        let ratio = np as f64 / nf as f64;
        assert!((0.05..0.95).contains(&ratio), "compression ratio {ratio}");
        // Subset property: every pruned config is in the full space.
        pruned.for_each(|cfg| {
            assert!(full.contains(cfg), "pruned config {cfg} not in full space");
            true
        });
    }

    #[test]
    fn every_enumerated_config_is_structurally_valid() {
        // The full (TVM-style) space guarantees only the template-level
        // constraints; footprint feasibility is a measurement-time
        // discovery (like TVM compile failures).
        let space = ConfigSpace::new(shape(), TileKind::Direct, SSM, false);
        let mut n = 0;
        space.for_each(|cfg| {
            assert!(cfg.validate_structural(&space.shape, space.kind, SSM).is_ok());
            n += 1;
            true
        });
        assert!(n > 100, "space suspiciously small: {n}");

        // The pruned space guarantees full validity.
        let pruned = ConfigSpace::new(shape(), TileKind::Direct, SSM, true);
        pruned.for_each(|cfg| {
            assert!(cfg.validate(&pruned.shape, pruned.kind, SSM, true).is_ok());
            true
        });
    }

    #[test]
    fn winograd_space_restricts_to_e_multiples() {
        let space = ConfigSpace::new(shape(), TileKind::Winograd(WinogradTile::F2X3), SSM, false);
        space.for_each(|cfg| {
            assert_eq!(cfg.x % 2, 0);
            assert_eq!(cfg.y % 2, 0);
            true
        });
        assert!(space.count() > 0);
    }

    #[test]
    fn samples_are_valid_and_inside() {
        let space = ConfigSpace::new(shape(), TileKind::Direct, SSM, true);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let cfg = space.sample(&mut rng, 1000).expect("sample");
            assert!(space.contains(&cfg));
        }
    }

    #[test]
    fn neighbors_stay_inside_and_differ() {
        let space = ConfigSpace::new(shape(), TileKind::Direct, SSM, true);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = space.sample(&mut rng, 1000).unwrap();
        let mut moved = 0;
        for _ in 0..50 {
            let n = space.neighbor(&cfg, &mut rng);
            assert!(space.contains(&n));
            if n != cfg {
                moved += 1;
            }
        }
        assert!(moved > 25, "neighbor almost never moves: {moved}/50");
    }

    #[test]
    fn crossover_children_are_valid() {
        let space = ConfigSpace::new(shape(), TileKind::Direct, SSM, false);
        let mut rng = StdRng::seed_from_u64(3);
        let a = space.sample(&mut rng, 1000).unwrap();
        let b = space.sample(&mut rng, 1000).unwrap();
        for _ in 0..20 {
            let c = space.crossover(&a, &b, &mut rng);
            assert!(space.contains(&c));
        }
    }

    #[test]
    fn count_matches_for_each() {
        let space = ConfigSpace::new(shape(), TileKind::Direct, SSM, true);
        let mut n = 0u64;
        space.for_each(|_| {
            n += 1;
            true
        });
        assert_eq!(n, space.count());
    }

    #[test]
    fn smaller_device_smem_shrinks_space() {
        let big = ConfigSpace::new(shape(), TileKind::Direct, 96 * 1024, false);
        let small = ConfigSpace::new(shape(), TileKind::Direct, 32 * 1024, false);
        assert!(small.count() < big.count());
    }

    #[test]
    fn fused_pool_space_restricts_tiles_to_the_pool_grid() {
        let pool = Epilogue::ReluPool { k: 2 };
        let space = ConfigSpace::fused(shape(), TileKind::Direct, SSM, true, pool);
        assert!(space.tile_choices_nonempty());
        space.for_each(|cfg| {
            assert_eq!(cfg.x % 2, 0, "pool window must tile the block: {cfg}");
            assert_eq!(cfg.y % 2, 0);
            true
        });
        assert!(space.count() > 0);
        assert!(space.count() < ConfigSpace::new(shape(), TileKind::Direct, SSM, true).count());
        // Relu constrains nothing: its space is the bare-conv space.
        let relu = ConfigSpace::fused(shape(), TileKind::Direct, SSM, true, Epilogue::Relu);
        assert_eq!(relu.count(), ConfigSpace::new(shape(), TileKind::Direct, SSM, true).count());
    }

    #[test]
    fn fused_winograd_space_honours_both_grids() {
        // e = 2 (F2X3), pool k = 2: lcm is 2. With k = 4: lcm is 4.
        let kind = TileKind::Winograd(WinogradTile::F2X3);
        let space = ConfigSpace::fused(shape(), kind, SSM, false, Epilogue::ReluPool { k: 4 });
        space.for_each(|cfg| {
            assert_eq!(cfg.x % 4, 0);
            assert_eq!(cfg.y % 4, 0);
            true
        });
        assert!(space.count() > 0);
    }

    #[test]
    fn incompatible_pool_window_empties_the_tile_choices() {
        // Padded output of the 28x28/3x3/s1/p1 shape is 28: divisors
        // share nothing with a pool window of 13, so no fused tile exists.
        let space =
            ConfigSpace::fused(shape(), TileKind::Direct, SSM, true, Epilogue::ReluPool { k: 13 });
        assert!(!space.tile_choices_nonempty());
        assert_eq!(space.count(), 0);
    }

    #[test]
    fn adjacent_walks_stay_in_range() {
        let choices = [1usize, 2, 4, 8];
        let mut rng = StdRng::seed_from_u64(4);
        let mut cur = 4usize;
        for _ in 0..100 {
            cur = adjacent(&choices, cur, &mut rng);
            assert!(choices.contains(&cur));
        }
        // Unknown current value falls back to a random choice.
        let v = adjacent(&choices, 3, &mut rng);
        assert!(choices.contains(&v));
    }
}
