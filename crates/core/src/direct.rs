//! Closed-form I/O lower-bound results for the **direct convolution**
//! (paper §4.2) and the I/O volume of the paper's near-optimal dataflow
//! (§5.2, Eqs. 20–21).

use crate::shapes::ConvShape;

/// Number of internal + output vertices in the direct-convolution DAG
/// (Lemma 4.8): `(2 W_ker H_ker C_in - 1) * W_out H_out C_out`, scaled by
/// the batch size (each image has an independent DAG copy).
pub fn vertex_count(shape: &ConvShape) -> u64 {
    let per_out = 2 * (shape.kw * shape.kh * shape.cin) as u64 - 1;
    per_out * shape.output_elems()
}

/// Closed-form `T(S)` upper bound of Lemma 4.11:
/// `T(S) <= 4 S sqrt(R S) + S - 1`.
pub fn t_closed(shape: &ConvShape, s: f64) -> f64 {
    let r = shape.reuse_factor();
    4.0 * s * (r * s).sqrt() + s - 1.0
}

/// Precise I/O lower bound following the proof of Theorem 4.12:
///
/// ```text
/// Q >= (2 Wk Hk Cin - 1) Wout Hout Cout / (8 sqrt(2 R S) + 2 - 1/S) - S
/// ```
///
/// i.e. Theorem 4.6 instantiated with Lemma 4.8's `|V|` and Lemma 4.11's
/// `T(2S)`. Units: `s` is the fast-memory capacity in *elements*; the
/// result is in elements moved.
pub fn io_lower_bound(shape: &ConvShape, s: f64) -> f64 {
    let v = vertex_count(shape) as f64;
    let denom = 8.0 * (2.0 * shape.reuse_factor() * s).sqrt() + 2.0 - 1.0 / s;
    (v / denom - s).max(0.0)
}

/// The headline asymptotic form of Theorem 4.12:
/// `Q = Omega( Wk Hk Cin Wout Hout Cout / (4 sqrt(2 R S)) )`.
pub fn io_lower_bound_leading(shape: &ConvShape, s: f64) -> f64 {
    let work = (shape.kw * shape.kh * shape.cin) as f64 * shape.output_elems() as f64;
    work / (4.0 * (2.0 * shape.reuse_factor() * s).sqrt())
}

/// Read I/O volume of the paper's dataflow with an explicit output tile
/// `x * y * z` (Eq. 20):
///
/// ```text
/// Q_read ~= (Hout Wout Cout / (x y z)) * (Hker Wker Cin (z + x y / R))
/// ```
///
/// Each output sub-block loads `x' y' C_in` inputs (where
/// `x' y' = mu^2 x y = x y Wk Hk / R`) and `Wk Hk Cin z` weights exactly
/// once. The batch dimension multiplies the number of sub-blocks.
pub fn dataflow_read_io(shape: &ConvShape, x: f64, y: f64, z: f64) -> f64 {
    let blocks = shape.output_elems() as f64 / (x * y * z);
    let kk_cin = (shape.kw * shape.kh * shape.cin) as f64;
    blocks * kk_cin * (z + x * y / shape.reuse_factor())
}

/// Total I/O of the dataflow with explicit tiles: reads (Eq. 20) plus one
/// store per output element.
pub fn dataflow_total_io(shape: &ConvShape, x: f64, y: f64, z: f64) -> f64 {
    dataflow_read_io(shape, x, y, z) + shape.output_elems() as f64
}

/// Total I/O at the *optimal* tile choice (Eq. 21): with `x y z ~= S/Np`
/// and the optimality condition `x y = R z`,
///
/// ```text
/// Q_DC ~= 2 Hout Wout Cout Hker Wker Cin / sqrt(R S / Np) + Hout Wout Cout
/// ```
pub fn dataflow_optimal_io(shape: &ConvShape, s: f64, np: f64) -> f64 {
    let out = shape.output_elems() as f64;
    let kk_cin = (shape.kw * shape.kh * shape.cin) as f64;
    2.0 * out * kk_cin / (shape.reuse_factor() * s / np).sqrt() + out
}

/// The *optimality condition* of §5.2: an output tile `x*y*z` minimises
/// Eq. 20 iff `x y = R z`. Returns the relative deviation
/// `|xy - Rz| / max(xy, Rz)` (0 = exactly optimal).
pub fn optimality_deviation(shape: &ConvShape, x: f64, y: f64, z: f64) -> f64 {
    let lhs = x * y;
    let rhs = shape.reuse_factor() * z;
    (lhs - rhs).abs() / lhs.max(rhs)
}

/// Ratio of the dataflow's optimal I/O to the precise lower bound — the
/// paper's near-optimality claim is that this approaches a small constant
/// when `Hker Wker Cin / sqrt(S R) >> 1` and `Np = 1`.
pub fn optimality_ratio(shape: &ConvShape, s: f64) -> f64 {
    dataflow_optimal_io(shape, s, 1.0) / io_lower_bound(shape, s).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite;
    use crate::composite::t_bound;
    use crate::phi_psi::direct_steps;

    fn layer() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    #[test]
    fn vertex_count_matches_lemma_4_8() {
        let s = ConvShape::new(4, 6, 6, 2, 3, 3, 1, 0);
        // per output: 2*3*3*4 - 1 = 71; outputs: 2*4*4 = 32.
        assert_eq!(vertex_count(&s), 71 * 32);
    }

    #[test]
    fn vertex_count_scales_with_batch() {
        let s = layer();
        assert_eq!(vertex_count(&s.with_batch(8)), 8 * vertex_count(&s));
    }

    #[test]
    fn closed_t_dominates_numeric_t() {
        // The numeric maximiser of Theorem 4.5 must stay at or below the
        // closed-form Lemma 4.11 bound.
        let shape = layer();
        let steps = direct_steps(shape.reuse_factor());
        for s in [64.0, 1024.0, 16384.0] {
            let numeric = t_bound(&steps, s).t;
            let closed = t_closed(&shape, s);
            assert!(numeric <= closed * 1.0001, "S={s}: numeric {numeric} > closed {closed}");
            // And closed form is tight (within grid tolerance).
            assert!(numeric >= 0.999 * closed, "S={s}: numeric {numeric} << closed {closed}");
        }
    }

    #[test]
    fn precise_bound_consistent_with_generic_theorem() {
        let shape = layer();
        let s = 2048.0;
        let steps = direct_steps(shape.reuse_factor());
        let generic = composite::io_lower_bound(&steps, vertex_count(&shape) as f64, s);
        let precise = io_lower_bound(&shape, s);
        // Both instantiate Theorem 4.6; closed-form T is an upper bound on
        // numeric T, so the closed-form Q is a (slightly) *lower* lower
        // bound. They agree within the grid tolerance.
        assert!(precise <= generic * 1.001, "precise {precise} generic {generic}");
        assert!(precise >= 0.99 * generic, "precise {precise} generic {generic}");
    }

    #[test]
    fn lower_bound_decreases_with_s() {
        let shape = layer();
        let q1 = io_lower_bound(&shape, 1024.0);
        let q2 = io_lower_bound(&shape, 4096.0);
        assert!(q2 < q1);
        // 4x S should roughly halve the bound (1/sqrt(S) scaling).
        let ratio = q1 / q2;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn leading_term_tracks_precise_bound() {
        let shape = layer();
        for s in [1024.0, 4096.0] {
            let lead = io_lower_bound_leading(&shape, s);
            let precise = io_lower_bound(&shape, s);
            let rel = (lead - precise).abs() / precise;
            assert!(rel < 0.1, "S={s}: leading {lead} vs precise {precise}");
        }
    }

    #[test]
    fn eq20_minimised_exactly_at_optimality_condition() {
        let shape = layer();
        let r = shape.reuse_factor();
        // Fixed budget xyz = 4096; compare xy = Rz against perturbations.
        let budget = 4096.0;
        let z = (budget / r).sqrt();
        let xy = r * z;
        let x = xy.sqrt();
        let best = dataflow_read_io(&shape, x, x, z);
        for factor in [0.5, 0.8, 1.25, 2.0] {
            let z2 = z * factor;
            let xy2 = budget / z2;
            let x2 = xy2.sqrt();
            let q = dataflow_read_io(&shape, x2, x2, z2);
            assert!(q >= best - 1e-6, "perturbed ({factor}) beat optimum: {q} < {best}");
        }
        assert!(optimality_deviation(&shape, x, x, z) < 1e-9);
    }

    #[test]
    fn eq21_matches_eq20_at_optimum() {
        let shape = layer();
        let s = 8192.0;
        let np = 1.0;
        // xyz = S/Np, xy = Rz.
        let r = shape.reuse_factor();
        let z = (s / np / r).sqrt();
        let xy = r * z;
        let x = xy.sqrt();
        let via_tiles = dataflow_total_io(&shape, x, x, z);
        let closed = dataflow_optimal_io(&shape, s, np);
        let rel = (via_tiles - closed).abs() / closed;
        assert!(rel < 1e-9, "tiles {via_tiles} closed {closed}");
    }

    #[test]
    fn dataflow_io_above_lower_bound() {
        // Any valid execution moves at least the lower bound.
        for hw in [14usize, 56, 112, 224] {
            let shape = ConvShape::square(256, hw, 128, 3, 1, 1);
            for s in [1024.0, 4096.0, 16384.0] {
                let q = dataflow_optimal_io(&shape, s, 1.0);
                let lb = io_lower_bound(&shape, s);
                assert!(q >= lb, "hw={hw} S={s}: dataflow {q} < bound {lb}");
            }
        }
    }

    #[test]
    fn near_optimality_ratio_is_small_constant() {
        // Thm 4.12 discussion: with Np = 1 and Hker Wker Cin/sqrt(SR) >> 1,
        // Q_DC approaches the bound within a constant (the paper's
        // constants give a ratio around 2*4*sqrt(2) / ... ~ O(10)).
        let shape = ConvShape::square(512, 112, 512, 3, 1, 1);
        let ratio = optimality_ratio(&shape, 1024.0);
        assert!(ratio > 1.0, "dataflow cannot beat the bound: {ratio}");
        assert!(ratio < 16.0, "dataflow should be within a small constant: {ratio}");
    }

    #[test]
    fn stride_reduces_reuse_and_raises_io() {
        // Larger stride => smaller R => more I/O per flop for the same S.
        let s1 = ConvShape::square(256, 112, 128, 3, 1, 1);
        let s2 = ConvShape::square(256, 112, 128, 3, 2, 1);
        let per_out_1 = dataflow_optimal_io(&s1, 4096.0, 1.0) / s1.output_elems() as f64;
        let per_out_2 = dataflow_optimal_io(&s2, 4096.0, 1.0) / s2.output_elems() as f64;
        assert!(per_out_2 > per_out_1);
    }
}
