//! # iolb-pebble — red-blue pebble game substrate
//!
//! The paper's lower-bound theory (Theorems 4.6, 4.12, 4.20 in `iolb-core`)
//! is stated over the red-blue pebble game of Hong & Kung. This crate makes
//! that model *executable* so the bounds can be validated empirically:
//!
//! * [`dag`] — computation DAGs with step labels, multi-step-partition
//!   validation (Definition 4.1) and the vertex-generation relation
//!   (Definition 4.2).
//! * [`game`] — the pebble game itself: legal moves, trace replay, I/O
//!   accounting. Re-computation is allowed, matching the paper's model
//!   (unlike red-blue-white pebbling, §8).
//! * [`strategies`] — heuristic pebbling schedules (LRU / Belady eviction)
//!   giving upper bounds on the optimal `Q`.
//! * [`exact`] — exact minimum-I/O search (0-1 BFS over pebble states) for
//!   tiny DAGs: ground truth for the sandwich
//!   `Q_lower <= Q_exact <= Q_heuristic`.
//! * [`flow`] — Dinic max-flow; minimum dominator sizes via Menger.
//! * [`partition`] — S-partition verification (Properties 1–4 of §2.1) and
//!   a greedy valid-partition builder upper-bounding `P(S)`.
//! * [`conv_dag`] — literal DAG builders for the direct convolution
//!   (Fig. 4) and the Winograd algorithm (Fig. 5), whose vertex counts
//!   reproduce Lemmas 4.8 and 4.14 exactly.
//!
//! ```
//! use iolb_core::shapes::ConvShape;
//! use iolb_pebble::conv_dag::direct_conv_dag;
//! use iolb_pebble::strategies::{pebble_topological, Eviction};
//!
//! // Pebble a tiny direct convolution with 16 red pebbles: the legal
//! // trace's I/O upper-bounds the true minimum, and a larger fast
//! // memory can never need more I/O under the same policy.
//! let dag = direct_conv_dag(&ConvShape::square(2, 4, 2, 3, 1, 0)); // unpadded
//! let small = pebble_topological(&dag, 16, Eviction::Lru);
//! let large = pebble_topological(&dag, 64, Eviction::Lru);
//! assert!(small.io >= large.io);
//! assert!(large.loads >= dag.inputs().len() as u64);
//! ```

#![allow(clippy::needless_range_loop)] // index loops read clearer in graph code
pub mod conv_dag;
pub mod dag;
pub mod exact;
pub mod flow;
pub mod game;
pub mod partition;
pub mod strategies;

pub use dag::{Dag, DagError, VertexId};
pub use game::{Game, GameError, Move};
pub use strategies::{pebble_topological, Eviction, StrategyOutcome};
