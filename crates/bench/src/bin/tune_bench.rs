//! `tune-bench` — measured performance trajectory points for the tuning
//! service and the compute kernels underneath it.
//!
//! ```console
//! $ tune-bench replay [--networks alexnet,squeezenet] [--clients N]
//!       [--repeat N] [--budget N] [--seed N] [--fuse] [-o BENCH_replay.json]
//! $ tune-bench kernels [--sizes 64,128,...] [--networks alexnet]
//!       [--reps N] [--threads N] [--max-layers N] [--sram-kib N]
//!       [-o BENCH_kernels.json]
//! ```
//!
//! `replay` drives a model-zoo traffic mix — every named network's conv
//! layers, duplicated `--repeat` times with deterministic shape jitter
//! on the copies — through N concurrent client threads, twice: once
//! against the embedded [`TuningService`] and once against an
//! in-process [`Daemon`] over its Unix socket. It reports throughput,
//! p50/p99 session latency (from the telemetry layer's
//! [`LatencyHistogram`]), hit rate and fresh-measurement counts per
//! mode as one schema-versioned flat JSON object (`BENCH_replay.json`,
//! validated in CI by `tune-cache check-bench`).
//!
//! With `--fuse`, `replay` additionally segments each named network
//! into fused conv→relu(→pool) blocks (`iolb_cnn::fusion`) and serves
//! the block batch twice through the same backends — once per-layer
//! (bare convs) and once as fused-chain workloads — recording the
//! fused-vs-fallback split and both serving plans' total modeled cost
//! (schema v3). The fused pass runs after the per-layer pass on the
//! same store, so gate-rejected chains resolve as shard hits: the
//! fallback's zero-extra-fresh-measurement property is measured, not
//! assumed. Embedded and daemon fused totals are asserted bit-identical
//! like the per-layer totals.
//!
//! `kernels` sweeps the scalar and vector compute kernels over square
//! GEMM sizes and the model zoo's conv layers (im2col on every layer,
//! Winograd `F(2,3)` where eligible), best-of-`--reps` wall time per
//! path. Each row carries GFLOP/s per path, the vector/scalar speedup,
//! and the shape's modeled slow-memory traffic against its `Q_lower`
//! I/O bound (the roofline gap). GEMM and im2col shapes are timed at
//! one thread and — when `--threads N` asks for more — again at `N`
//! threads, each as its own row (schema v2 rows carry `threads`), so
//! the artifact captures parallel scaling. It writes schema-versioned
//! JSON lines (`BENCH_kernels.json`, validated by `tune-cache
//! check-bench`).
//!
//! Latency and throughput are wall-clock and vary run to run; the
//! *results* do not — a replay's two modes run identical hermetic
//! sessions (summed session cost asserted bit-identical), and a kernel
//! sweep diffs the vector path's output bits against scalar on every
//! shape it times. Every benchmark run doubles as a correctness check.

use iolb_autotune::fusion::epilogue_unfused_ms;
use iolb_cnn::layers::{ConvLayer, Network};
use iolb_cnn::{inference::time_network_with_backend, ServiceEconomics};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_core::{matmul, Algorithm, WinogradTile};
use iolb_gpusim::DeviceSpec;
use iolb_service::{
    shape_perturbations, Backend, BackendSession, Daemon, DaemonConfig, LatencyHistogram,
    ServiceConfig, ShardedStore, SocketBackend, TuneRequest, TuningService,
};
use iolb_tensor::conv_ref::ConvParams;
use iolb_tensor::gemm::{gemm_with_path, MatRef};
use iolb_tensor::im2col::conv2d_im2col_with_path;
use iolb_tensor::kernel::KernelPath;
use iolb_tensor::tensor::Tensor4;
use iolb_tensor::winograd_conv::{conv2d_winograd_with_plan_path, WinogradPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tune-bench replay  [--networks A,B,...] [--clients N] [--repeat N]\n\
         \u{20}                        [--budget N] [--seed N] [--jitter] [--fuse] [-o FILE]\n\
         \u{20}      tune-bench kernels [--sizes N,N,...] [--networks A,B,...] [--reps N]\n\
         \u{20}                        [--threads N] [--max-layers N] [--sram-kib N]\n\
         \u{20}                        [-o FILE]\n\
         \n\
         replay: drive a model-zoo traffic mix (each network's conv layers,\n\
         duplicated --repeat times with deterministic shape jitter) through\n\
         N client threads, against the embedded service and against an\n\
         in-process daemon, and write one flat JSON summary (default\n\
         BENCH_replay.json): throughput, p50/p99 session latency, hit rate,\n\
         anchored hit rate, fresh measurements per mode. Fails unless both\n\
         modes' total costs are bit-identical (hermetic tuning).\n\
         \n\
         --jitter warms each backend on the unjittered zoo shapes first,\n\
         then replays every copy with in-anchor-bucket shape jitter, so the\n\
         measured phase exercises anchored transfer serving directly.\n\
         \n\
         --fuse additionally segments each named network into fused\n\
         conv->relu(->pool) blocks and serves the block batch per-layer and\n\
         fused through both backends, recording the fused-vs-fallback split\n\
         and both plans' total cost (fused must come out below per-layer).\n\
         \n\
         kernels: sweep the scalar vs vector compute kernels over square\n\
         GEMM sizes (--sizes, default 64,128,256,512) and each named\n\
         network's conv layers (im2col everywhere, Winograd F(2,3) where\n\
         eligible; --max-layers caps layers per network), best of --reps\n\
         runs per path; GEMM and im2col shapes are re-timed at --threads N\n\
         as their own rows when N > 1. Write JSON lines (default\n\
         BENCH_kernels.json): one header, then per shape GFLOP/s per path,\n\
         vector/scalar speedup, and modeled bytes moved vs the Q_lower\n\
         bound (--sram-kib fast memory, default 32). Fails unless the\n\
         vector path's output bits match scalar on every shape."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replay") => run_replay(&args[1..]),
        Some("kernels") => run_kernels(&args[1..]),
        _ => usage(),
    }
}

fn run_replay(rest: &[String]) -> ExitCode {
    let networks = flag_string(rest, "--networks").unwrap_or_else(|| "alexnet,squeezenet".into());
    let clients = flag_value(rest, "--clients").unwrap_or(2).max(1);
    let repeat = flag_value(rest, "--repeat").unwrap_or(2).max(1);
    let budget = flag_value(rest, "--budget").unwrap_or(16);
    let seed = flag_value(rest, "--seed").unwrap_or(7) as u64;
    let jitter_mode = rest.iter().any(|a| a == "--jitter");
    let fuse_mode = rest.iter().any(|a| a == "--fuse");
    let out = flag_path(rest, "-o").unwrap_or_else(|| PathBuf::from("BENCH_replay.json"));

    let config = ServiceConfig {
        budget_per_workload: budget,
        workers: 0, // clients tune inline; keeps the replay deterministic
        speculate_neighbors: false,
        seed,
        ..ServiceConfig::default()
    };

    let (mix, warm) = match build_mix(&networks, repeat, jitter_mode, config.anchor_floor) {
        Ok(built) => built,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let requests_hint: usize = mix.iter().map(|n| n.layers.len()).sum();
    eprintln!(
        "replaying {} session(s) ({requests_hint} layer(s)) over {clients} client thread(s), \
         budget {budget}, seed {seed}{}",
        mix.len(),
        if jitter_mode { ", in-bucket jitter (anchored serving)" } else { "" },
    );

    // Mode 1: embedded — every client thread drives one shared service.
    let service = TuningService::new(ShardedStore::new(), config);
    let embedded = run_mode(&mix, &warm, clients, || Ok(service.clone()));
    let embedded = match embedded {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: embedded replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Mode 2: daemon — the same mix over a Unix socket against a fresh
    // in-process daemon (own shard directory, own store).
    let daemon = match run_daemon_mode(&mix, &warm, clients, config) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: daemon replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The two modes ran the identical hermetic sessions; their summed
    // costs must agree to the bit or one of the serving paths is broken.
    if embedded.total_cost_ms.to_bits() != daemon.total_cost_ms.to_bits() {
        eprintln!(
            "error: embedded ({}) and daemon ({}) total costs differ — serving is not hermetic",
            embedded.total_cost_ms, daemon.total_cost_ms
        );
        return ExitCode::FAILURE;
    }

    // The optional fusion comparison: fused-chain serving vs the
    // per-layer plan, through the embedded service *and* a fresh
    // daemon (the totals must match to the bit, like the main replay).
    let fuse = if fuse_mode {
        let zoo_nets = match named_networks(&networks) {
            Ok(nets) => nets,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let fuse_embedded = {
            let service = TuningService::new(ShardedStore::new(), config);
            fuse_pass(&zoo_nets, &service)
        };
        let fuse_embedded = match fuse_embedded {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("error: embedded fused replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fuse_daemon = match run_fuse_daemon(&zoo_nets, config) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("error: daemon fused replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if fuse_embedded.fused_total_ms.to_bits() != fuse_daemon.fused_total_ms.to_bits()
            || fuse_embedded.perlayer_total_ms.to_bits() != fuse_daemon.perlayer_total_ms.to_bits()
        {
            eprintln!(
                "error: embedded and daemon fused totals differ \
                 ({} vs {} fused, {} vs {} per-layer) — fused serving is not hermetic",
                fuse_embedded.fused_total_ms,
                fuse_daemon.fused_total_ms,
                fuse_embedded.perlayer_total_ms,
                fuse_daemon.perlayer_total_ms,
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fusion: {} block(s) — {} fused, {} fallback(s); \
             fused plan {:.6} ms vs per-layer {:.6} ms \
             ({} fresh measurement(s) vs {} for the per-layer pass)",
            fuse_embedded.blocks,
            fuse_embedded.fused,
            fuse_embedded.fallbacks,
            fuse_embedded.fused_total_ms,
            fuse_embedded.perlayer_total_ms,
            fuse_embedded.fused_fresh,
            fuse_embedded.baseline_fresh,
        );
        Some(fuse_embedded)
    } else {
        None
    };

    let line = format!(
        "{{\"schema\":\"iolb-bench-replay\",\"v\":3,\"networks\":\"{}\",\"clients\":{clients},\
         \"repeat\":{repeat},\"budget\":{budget},\"seed\":{seed},\"jitter\":{},\
         \"anchor_floor\":{},\"transfer_gap_permille\":{},\"sessions\":{},\"requests\":{}{}{}{}}}",
        iolb_records::jsonl::escape(&networks),
        u8::from(jitter_mode),
        config.anchor_floor,
        config.transfer_gap_permille,
        mix.len(),
        embedded.requests,
        mode_fields("embedded", &embedded),
        mode_fields("daemon", &daemon),
        fuse_fields(fuse.as_ref()),
    );
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("{line}");
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}

/// One swept shape's measurements: both kernel paths timed
/// (best-of-reps), outputs diffed to the bit, traffic modeled against
/// the shape's I/O lower bound.
struct KernelRow {
    /// `"gemm"` or `"conv"`.
    kind: &'static str,
    /// Diagnostic name, e.g. `"gemm-512"` or `"alexnet/conv3"`.
    name: String,
    /// Algorithm label: `"blocked"` for GEMM, `"im2col"`/`"winograd"`
    /// for conv layers.
    algo: &'static str,
    /// Human-readable shape, e.g. `"512x512x512"`.
    shape: String,
    /// Worker threads this row was timed with (Winograd rows are
    /// always 1 — that path has no thread knob).
    threads: usize,
    /// FLOPs of one run (the crate's own accounting).
    flops: f64,
    /// Best-of-reps wall seconds per path.
    scalar_s: f64,
    vector_s: f64,
    /// Modeled traffic of the blocked/dataflow schedule vs the bound,
    /// in bytes (`f32` elements x 4).
    q_lower_bytes: f64,
    q_sched_bytes: f64,
}

impl KernelRow {
    fn scalar_gflops(&self) -> f64 {
        self.flops / self.scalar_s / 1e9
    }

    fn vector_gflops(&self) -> f64 {
        self.flops / self.vector_s / 1e9
    }

    fn speedup(&self) -> f64 {
        self.scalar_s / self.vector_s
    }

    /// Modeled-schedule bytes over bound bytes; 0 when the bound
    /// degenerates to 0 (shape fits in fast memory — no gap to speak of).
    fn roofline_gap(&self) -> f64 {
        if self.q_lower_bytes > 0.0 {
            self.q_sched_bytes / self.q_lower_bytes
        } else {
            0.0
        }
    }

    fn json_line(&self) -> String {
        format!(
            "{{\"row\":\"{}\",\"name\":\"{}\",\"algo\":\"{}\",\"shape\":\"{}\",\"threads\":{},\
             \"gflop\":{},\"scalar_gflops\":{},\"vector_gflops\":{},\"speedup\":{},\
             \"q_lower_bytes\":{},\"q_sched_bytes\":{},\"roofline_gap\":{}}}",
            self.kind,
            iolb_records::jsonl::escape(&self.name),
            self.algo,
            iolb_records::jsonl::escape(&self.shape),
            self.threads,
            self.flops / 1e9,
            self.scalar_gflops(),
            self.vector_gflops(),
            self.speedup(),
            self.q_lower_bytes,
            self.q_sched_bytes,
            self.roofline_gap(),
        )
    }
}

/// Times `work` `reps` times and returns the best wall seconds — the
/// noise-robust estimator on a shared machine (any interference only
/// inflates a sample, never deflates it). Scalar and vector runs are
/// interleaved by the caller so drift hits both paths alike.
fn best_of(reps: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        work();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// The `kernels` subcommand: sweep scalar vs vector kernels over GEMM
/// sizes and model-zoo conv layers, write `BENCH_kernels.json`.
fn run_kernels(rest: &[String]) -> ExitCode {
    let sizes_arg = flag_string(rest, "--sizes").unwrap_or_else(|| "64,128,256,512".into());
    let networks = flag_string(rest, "--networks").unwrap_or_else(|| "alexnet".into());
    let reps = flag_value(rest, "--reps").unwrap_or(3).max(1);
    let threads = flag_value(rest, "--threads").unwrap_or(1).max(1);
    let max_layers = flag_value(rest, "--max-layers").unwrap_or(usize::MAX).max(1);
    let sram_kib = flag_value(rest, "--sram-kib").unwrap_or(32).max(1);
    let out = flag_path(rest, "-o").unwrap_or_else(|| PathBuf::from("BENCH_kernels.json"));

    let mut sizes = Vec::new();
    for part in sizes_arg.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match part.parse::<usize>() {
            Ok(m) if m >= 1 => sizes.push(m),
            _ => {
                eprintln!("error: bad --sizes entry {part:?}");
                return ExitCode::from(2);
            }
        }
    }
    if sizes.is_empty() {
        eprintln!("error: --sizes is empty");
        return ExitCode::from(2);
    }

    // Fast-memory size in f32 elements for the Q_lower / schedule models.
    let s = (sram_kib * 1024 / 4) as f64;
    // Every GEMM / im2col shape is timed single-threaded and — when
    // --threads asks for more — again at N threads, as its own row.
    let thread_counts: Vec<usize> = if threads > 1 { vec![1, threads] } else { vec![1] };
    let mut rows: Vec<KernelRow> = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);

    for &m in &sizes {
        eprintln!("gemm {m}x{m}x{m} ...");
        match gemm_rows(m, reps, &thread_counts, s, &mut rng) {
            Ok(mut size_rows) => rows.append(&mut size_rows),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let zoo = iolb_cnn::models::all_networks();
    for name in networks.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let wanted = name.to_ascii_lowercase();
        let Some(net) = zoo.iter().find(|n| n.name.to_ascii_lowercase() == wanted) else {
            eprintln!(
                "error: unknown network {name:?}; known: {}",
                zoo.iter().map(|n| n.name.to_ascii_lowercase()).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::from(2);
        };
        for layer in net.layers.iter().take(max_layers) {
            eprintln!("conv {}/{} ...", net.name, layer.name);
            match conv_rows(net.name, layer, reps, &thread_counts, s, &mut rng) {
                Ok(mut layer_rows) => rows.append(&mut layer_rows),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut text = format!(
        "{{\"schema\":\"iolb-bench-kernels\",\"v\":2,\"sizes\":\"{}\",\"networks\":\"{}\",\
         \"reps\":{reps},\"threads\":{threads},\"sram_kib\":{sram_kib},\"rows\":{}}}\n",
        iolb_records::jsonl::escape(&sizes_arg),
        iolb_records::jsonl::escape(&networks),
        rows.len(),
    );
    for row in &rows {
        text.push_str(&row.json_line());
        text.push('\n');
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    print!("{text}");
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}

/// The rows for one square `m x m x m` GEMM — one per thread count,
/// same inputs: both paths timed, outputs diffed to the bit, bound and
/// blocked-schedule traffic from `iolb_core`.
fn gemm_rows(
    m: usize,
    reps: usize,
    thread_counts: &[usize],
    s: f64,
    rng: &mut StdRng,
) -> Result<Vec<KernelRow>, String> {
    let a: Vec<f32> = (0..m * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..m * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let a_ref = MatRef::new(&a, m, m);
    let b_ref = MatRef::new(&b, m, m);
    let shape = matmul::MatmulShape::new(m);
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let mut c_scalar = vec![0.0f32; m * m];
        let mut c_vector = vec![0.0f32; m * m];
        let scalar_s = best_of(reps, || {
            gemm_with_path(a_ref, b_ref, &mut c_scalar, threads, KernelPath::Scalar)
        });
        let vector_s = best_of(reps, || {
            gemm_with_path(a_ref, b_ref, &mut c_vector, threads, KernelPath::Vector)
        });
        if c_scalar.iter().zip(&c_vector).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return Err(format!(
                "gemm {m} ({threads} thread(s)): vector output differs from scalar — kernel bug"
            ));
        }
        rows.push(KernelRow {
            kind: "gemm",
            name: format!("gemm-{m}"),
            algo: "blocked",
            shape: format!("{m}x{m}x{m}"),
            threads,
            flops: 2.0 * shape.macs() as f64,
            scalar_s,
            vector_s,
            q_lower_bytes: matmul::io_lower_bound(&shape, s) * 4.0,
            q_sched_bytes: matmul::blocked_schedule_io(&shape, s) * 4.0,
        });
    }
    Ok(rows)
}

/// The rows for one conv layer: im2col + GEMM always (one row per
/// thread count), Winograd `F(2,3)` when the layer is eligible (that
/// path has no thread knob — one single-threaded row). Traffic models
/// come from the paper's per-algorithm bounds and near-optimal
/// dataflow volumes.
fn conv_rows(
    net: &str,
    layer: &ConvLayer,
    reps: usize,
    thread_counts: &[usize],
    s: f64,
    rng: &mut StdRng,
) -> Result<Vec<KernelRow>, String> {
    let shape = &layer.shape;
    let params = ConvParams::new(shape.stride, shape.pad);
    let input = Tensor4::random(shape.batch, shape.cin, shape.hin, shape.win, rng);
    let weights = Tensor4::random(shape.cout, shape.cin, shape.kh, shape.kw, rng);
    let shape_str = format!(
        "{}x{}x{}->{} {}x{}/{}+{}",
        shape.cin, shape.hin, shape.win, shape.cout, shape.kh, shape.kw, shape.stride, shape.pad
    );
    let mut rows = Vec::new();

    for &threads in thread_counts {
        let mut out_scalar = None;
        let mut out_vector = None;
        let scalar_s = best_of(reps, || {
            out_scalar = Some(conv2d_im2col_with_path(
                &input,
                &weights,
                params,
                threads,
                KernelPath::Scalar,
            ));
        });
        let vector_s = best_of(reps, || {
            out_vector = Some(conv2d_im2col_with_path(
                &input,
                &weights,
                params,
                threads,
                KernelPath::Vector,
            ));
        });
        bit_diff(&out_scalar.unwrap(), &out_vector.unwrap())
            .map_err(|e| format!("{net}/{} im2col ({threads} thread(s)): {e}", layer.name))?;
        rows.push(KernelRow {
            kind: "conv",
            name: format!("{net}/{}", layer.name),
            algo: "im2col",
            shape: shape_str.clone(),
            threads,
            flops: Algorithm::Direct.flops(shape),
            scalar_s,
            vector_s,
            q_lower_bytes: Algorithm::Direct.io_lower_bound(shape, s) * 4.0,
            q_sched_bytes: Algorithm::Direct.dataflow_io(shape, s, 1.0) * 4.0,
        });
    }

    if layer.winograd_eligible() {
        let tile = WinogradTile::F2X3;
        let plan = WinogradPlan::new(&weights, tile.e);
        let mut out_scalar = None;
        let mut out_vector = None;
        let scalar_s = best_of(reps, || {
            out_scalar =
                Some(conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Scalar));
        });
        let vector_s = best_of(reps, || {
            out_vector =
                Some(conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Vector));
        });
        bit_diff(&out_scalar.unwrap(), &out_vector.unwrap())
            .map_err(|e| format!("{net}/{} winograd: {e}", layer.name))?;
        let algo = Algorithm::Winograd(tile);
        rows.push(KernelRow {
            kind: "conv",
            name: format!("{net}/{}", layer.name),
            algo: "winograd",
            shape: shape_str,
            threads: 1,
            flops: algo.flops(shape),
            scalar_s,
            vector_s,
            q_lower_bytes: algo.io_lower_bound(shape, s) * 4.0,
            q_sched_bytes: algo.dataflow_io(shape, s, 1.0) * 4.0,
        });
    }
    Ok(rows)
}

/// Errors unless the two tensors are bit-identical — every sweep run
/// doubles as a scalar-vs-vector correctness check.
fn bit_diff(scalar: &Tensor4, vector: &Tensor4) -> Result<(), String> {
    let differs =
        scalar.as_slice().iter().zip(vector.as_slice()).any(|(x, y)| x.to_bits() != y.to_bits());
    if differs {
        Err("vector output differs from scalar — kernel bug".to_string())
    } else {
        Ok(())
    }
}

/// One serving mode's aggregate outcome.
struct ModeOutcome {
    sessions: usize,
    requests: usize,
    fresh: usize,
    hits: usize,
    anchored: usize,
    retunes: usize,
    wall: Duration,
    latency: LatencyHistogram,
    /// Sum of per-session total costs, accumulated in mix order so the
    /// embedded/daemon comparison is bit-exact.
    total_cost_ms: f64,
}

/// `"{mode}_*"` fields of the summary line.
fn mode_fields(mode: &str, o: &ModeOutcome) -> String {
    let wall_s = o.wall.as_secs_f64();
    let throughput = if wall_s > 0.0 { o.sessions as f64 / wall_s } else { 0.0 };
    let rate = |n: usize| if o.requests == 0 { 0.0 } else { n as f64 / o.requests as f64 };
    format!(
        ",\"{mode}_throughput_rps\":{throughput},\
         \"{mode}_p50_ms\":{},\"{mode}_p99_ms\":{},\
         \"{mode}_hit_rate\":{},\"{mode}_anchored_hit_rate\":{},\
         \"{mode}_anchored\":{},\"{mode}_retunes\":{},\
         \"{mode}_fresh\":{},\"{mode}_total_cost_ms\":{}",
        o.latency.quantile(0.5) as f64 / 1000.0,
        o.latency.quantile(0.99) as f64 / 1000.0,
        rate(o.hits),
        rate(o.anchored),
        o.anchored,
        o.retunes,
        o.fresh,
        o.total_cost_ms,
    )
}

/// Builds the traffic mix plus the warm-up networks.
///
/// Default mode: every named network's conv layers, `repeat` copies
/// each — copy 0 verbatim, later copies jittered through the service's
/// own perturbation neighborhood (deterministically — no clock, no
/// RNG), modelling near-duplicate traffic the way the paper's
/// speculation story does. No warm-up.
///
/// Jitter mode (`--jitter`): the warm-up list is the zoo networks
/// verbatim and *every* measured copy applies in-anchor-bucket jitter
/// ([`bucket_jitter`]), so each measured request is an exact miss whose
/// anchor bucket the warm phase already tuned — the anchored-serving
/// trajectory.
fn build_mix(
    networks: &str,
    repeat: usize,
    jitter_mode: bool,
    anchor_floor: usize,
) -> Result<(Vec<Network>, Vec<Network>), String> {
    let zoo = iolb_cnn::models::all_networks();
    let mut mix = Vec::new();
    let mut warm = Vec::new();
    for name in networks.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let wanted = name.to_ascii_lowercase();
        let net = zoo.iter().find(|n| n.name.to_ascii_lowercase() == wanted).ok_or_else(|| {
            format!(
                "unknown network {name:?}; known: {}",
                zoo.iter().map(|n| n.name.to_ascii_lowercase()).collect::<Vec<_>>().join(", ")
            )
        })?;
        if jitter_mode {
            warm.push(Network { name: net.name, layers: net.layers.clone() });
        }
        for copy in 0..repeat {
            let layers: Vec<ConvLayer> = net
                .layers
                .iter()
                .enumerate()
                .map(|(at, layer)| {
                    let shape = if jitter_mode {
                        bucket_jitter(&layer.shape, anchor_floor, copy * 31 + at + 1)
                    } else if copy == 0 {
                        layer.shape
                    } else {
                        jitter(&layer.shape, copy + at)
                    };
                    ConvLayer::new(format!("{}#{copy}", layer.name), shape)
                })
                .collect();
            mix.push(Network { name: net.name, layers });
        }
    }
    if mix.is_empty() {
        return Err("no networks in --networks".to_string());
    }
    Ok((mix, warm))
}

/// Deterministic shape jitter: the `salt`-th valid perturbation
/// neighbor, or the shape itself when it has none.
fn jitter(shape: &ConvShape, salt: usize) -> ConvShape {
    let neighbors = shape_perturbations(shape);
    if neighbors.is_empty() {
        *shape
    } else {
        neighbors[salt % neighbors.len()].0
    }
}

/// Deterministic *in-anchor-bucket* jitter of one dimension: decrement
/// by 1..=3 (salted), but never past the bucket's lower edge (the next
/// power of two's half, exclusive) or the anchor floor — so the
/// jittered dimension provably shares the original's anchor bucket
/// ([`iolb_autotune::plan::anchor_dim`]). Dimensions at or below the
/// floor anchor exactly and stay untouched.
fn bucket_jitter_dim(d: usize, floor: usize, salt: usize) -> usize {
    let lo = (d.next_power_of_two() / 2 + 1).max(floor + 1);
    if d <= lo {
        return d;
    }
    let span = d - lo;
    d - (1 + salt % span.min(3))
}

/// In-bucket jitter of a layer shape: spatial extents and channel
/// counts move within their anchor buckets; filter geometry, stride,
/// padding and batch (the exact-match anchor fields) stay put.
fn bucket_jitter(shape: &ConvShape, floor: usize, salt: usize) -> ConvShape {
    ConvShape {
        cin: bucket_jitter_dim(shape.cin, floor, salt),
        hin: bucket_jitter_dim(shape.hin, floor, salt + 1),
        win: bucket_jitter_dim(shape.win, floor, salt + 1),
        cout: bucket_jitter_dim(shape.cout, floor, salt + 2),
        ..*shape
    }
}

/// Replays the whole mix through `clients` threads, each with its own
/// backend from `make_backend`. Sessions are claimed off a shared
/// cursor; per-session wall latency lands in one merged histogram and
/// per-session costs are summed in mix order. The `warm` networks run
/// first, sequentially, on one backend — outside the measured window
/// and outside every counter (they pre-tune the anchor buckets for a
/// `--jitter` replay).
fn run_mode<B, F>(
    mix: &[Network],
    warm: &[Network],
    clients: usize,
    make_backend: F,
) -> Result<ModeOutcome, String>
where
    B: Backend,
    F: Fn() -> Result<B, String> + Sync,
{
    let device = DeviceSpec::v100();
    if !warm.is_empty() {
        let backend = make_backend()?;
        for net in warm {
            time_network_with_backend(net, &device, &backend)
                .map_err(|e| format!("warm-up of {}: {e}", net.name))?;
        }
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(f64, ServiceEconomics, u64)>>> = Mutex::new(vec![None; mix.len()]);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let backend = match make_backend() {
                    Ok(backend) => backend,
                    Err(e) => {
                        failure.lock().unwrap().get_or_insert(e);
                        return;
                    }
                };
                loop {
                    let at = cursor.fetch_add(1, Ordering::SeqCst);
                    if at >= mix.len() {
                        return;
                    }
                    let session_started = Instant::now();
                    match time_network_with_backend(&mix[at], &device, &backend) {
                        Ok((timed, eco)) => {
                            let us = u64::try_from(session_started.elapsed().as_micros())
                                .unwrap_or(u64::MAX);
                            slots.lock().unwrap()[at] = Some((timed.ours_ms, eco, us));
                        }
                        Err(e) => {
                            failure.lock().unwrap().get_or_insert(format!("session {at}: {e}"));
                            return;
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();
    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    let slots = slots.into_inner().unwrap();
    let mut outcome = ModeOutcome {
        sessions: mix.len(),
        requests: 0,
        fresh: 0,
        hits: 0,
        anchored: 0,
        retunes: 0,
        wall,
        latency: LatencyHistogram::new(),
        total_cost_ms: 0.0,
    };
    for slot in slots {
        let (cost, eco, us) = slot.ok_or("a session was never run")?;
        outcome.total_cost_ms += cost;
        outcome.requests += eco.shard_hits + eco.stolen + eco.inline_tuned + eco.anchored;
        outcome.fresh += eco.fresh_measurements;
        outcome.hits += eco.shard_hits;
        outcome.anchored += eco.anchored;
        outcome.retunes += eco.transfer_retunes;
        outcome.latency.record(us);
    }
    Ok(outcome)
}

/// The daemon mode: bind an in-process [`Daemon`] on a scratch shard
/// directory, replay the mix over its Unix socket (one connection per
/// client thread), then shut it down and clean up.
fn run_daemon_mode(
    mix: &[Network],
    warm: &[Network],
    clients: usize,
    config: ServiceConfig,
) -> Result<ModeOutcome, String> {
    let dir = std::env::temp_dir().join(format!("iolb-tune-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let sock = dir.join("daemon.sock");
    let daemon_config = DaemonConfig {
        service: config,
        merge_interval: Duration::from_millis(200),
        ..DaemonConfig::default()
    };
    let (daemon, _report) = Daemon::bind(&dir, &sock, daemon_config)
        .map_err(|e| format!("cannot bind replay daemon: {e}"))?;
    let server = std::thread::spawn(move || daemon.run());
    let outcome = run_mode(mix, warm, clients, || {
        SocketBackend::connect(&sock).map_err(|e| format!("cannot connect to replay daemon: {e}"))
    });
    let stop = SocketBackend::connect(&sock)
        .map_err(|e| format!("cannot connect for shutdown: {e}"))
        .and_then(|b| b.shutdown().map_err(|e| format!("daemon shutdown failed: {e}")));
    let run = server.join().map_err(|_| "replay daemon panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&dir);
    stop?;
    run.map_err(|e| format!("replay daemon failed: {e}"))?;
    outcome
}

/// Resolves a comma-separated `--networks` list against the model zoo.
fn named_networks(networks: &str) -> Result<Vec<Network>, String> {
    let zoo = iolb_cnn::models::all_networks();
    let mut nets = Vec::new();
    for name in networks.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let wanted = name.to_ascii_lowercase();
        let net = zoo.iter().find(|n| n.name.to_ascii_lowercase() == wanted).ok_or_else(|| {
            format!(
                "unknown network {name:?}; known: {}",
                zoo.iter().map(|n| n.name.to_ascii_lowercase()).collect::<Vec<_>>().join(", ")
            )
        })?;
        nets.push(Network { name: net.name, layers: net.layers.clone() });
    }
    if nets.is_empty() {
        return Err("no networks in --networks".to_string());
    }
    Ok(nets)
}

/// The `--fuse` comparison's aggregate outcome over one backend.
#[derive(Default)]
struct FuseOutcome {
    /// Conv blocks proposed by segmentation (repeats counted once).
    blocks: usize,
    /// Chains the analytic gate approved (served fused).
    fused: usize,
    /// Chains the gate rewrote to their per-layer fallback.
    fallbacks: usize,
    /// Total cost of the fused serving plan: fused-chain cost for
    /// approved blocks (the epilogue rides inside the measurement),
    /// bare conv + modeled unfused epilogue for fallbacks. Layer
    /// repeats multiply.
    fused_total_ms: f64,
    /// Total cost of the per-layer plan: bare conv best + modeled
    /// unfused epilogue for every block.
    perlayer_total_ms: f64,
    /// Fresh measurements of the fused pass (fallback chains resolve
    /// from the per-layer pass's records — only approved chains cost
    /// anything here).
    fused_fresh: usize,
    /// Fresh measurements of the per-layer pass.
    baseline_fresh: usize,
}

/// Segments each network and serves its conv blocks twice through one
/// backend: per-layer first, then as fused-chain requests. Running both
/// passes over the same store makes the fallback economics measurable —
/// a gate-rejected chain dedupes against the per-layer pass's records
/// and must cost zero extra fresh measurements.
fn fuse_pass<B: Backend>(nets: &[Network], backend: &B) -> Result<FuseOutcome, String> {
    let device = DeviceSpec::v100();
    let mut out = FuseOutcome::default();
    for net in nets {
        let ops = iolb_cnn::fusion::op_stream(net);
        let blocks: Vec<_> =
            iolb_cnn::fusion::segment(&ops).into_iter().filter(|b| b.conv.is_some()).collect();
        let bare: Vec<TuneRequest> = blocks
            .iter()
            .map(|b| TuneRequest::bare(b.conv.as_ref().expect("filtered").shape, TileKind::Direct))
            .collect();
        let fused: Vec<TuneRequest> = blocks
            .iter()
            .map(|b| {
                TuneRequest::fused(
                    b.conv.as_ref().expect("filtered").shape,
                    TileKind::Direct,
                    b.epilogue,
                )
            })
            .collect();
        let bare_results = backend
            .submit_batch(&bare, &device)
            .and_then(|s| s.wait())
            .map_err(|e| format!("{} per-layer pass: {e}", net.name))?;
        let fused_results = backend
            .submit_batch(&fused, &device)
            .and_then(|s| s.wait())
            .map_err(|e| format!("{} fused pass: {e}", net.name))?;
        for (block, (bare, fused)) in blocks.iter().zip(bare_results.iter().zip(&fused_results)) {
            let layer = block.conv.as_ref().expect("filtered");
            let bare = bare.as_ref().ok_or_else(|| format!("{} is infeasible", layer.name))?;
            let fused = fused.as_ref().ok_or_else(|| format!("{} is infeasible", layer.name))?;
            let repeat = layer.repeat as f64;
            let epilogue_ms = epilogue_unfused_ms(&layer.shape, block.epilogue, &device);
            out.perlayer_total_ms += repeat * (bare.cost_ms + epilogue_ms);
            out.fused_total_ms +=
                repeat * if fused.fused { fused.cost_ms } else { fused.cost_ms + epilogue_ms };
            out.blocks += 1;
            if !block.epilogue.is_none() {
                if fused.fused {
                    out.fused += 1;
                } else {
                    out.fallbacks += 1;
                }
            }
            out.baseline_fresh += bare.fresh_measurements;
            out.fused_fresh += fused.fresh_measurements;
        }
    }
    Ok(out)
}

/// The daemon leg of the `--fuse` comparison: bind a fresh in-process
/// daemon on a scratch directory, run both passes over its Unix socket
/// (exercising the wire protocol's fused-chain grammar), shut down.
fn run_fuse_daemon(nets: &[Network], config: ServiceConfig) -> Result<FuseOutcome, String> {
    let dir = std::env::temp_dir().join(format!("iolb-tune-bench-fuse-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let sock = dir.join("daemon.sock");
    let daemon_config = DaemonConfig {
        service: config,
        merge_interval: Duration::from_millis(200),
        ..DaemonConfig::default()
    };
    let (daemon, _report) = Daemon::bind(&dir, &sock, daemon_config)
        .map_err(|e| format!("cannot bind fuse daemon: {e}"))?;
    let server = std::thread::spawn(move || daemon.run());
    let outcome = SocketBackend::connect(&sock)
        .map_err(|e| format!("cannot connect to fuse daemon: {e}"))
        .and_then(|backend| fuse_pass(nets, &backend));
    let stop = SocketBackend::connect(&sock)
        .map_err(|e| format!("cannot connect for shutdown: {e}"))
        .and_then(|b| b.shutdown().map_err(|e| format!("daemon shutdown failed: {e}")));
    let run = server.join().map_err(|_| "fuse daemon panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&dir);
    stop?;
    run.map_err(|e| format!("fuse daemon failed: {e}"))?;
    outcome
}

/// The `fuse*` fields of the v3 summary line; `"fuse":0` alone when the
/// comparison did not run.
fn fuse_fields(fuse: Option<&FuseOutcome>) -> String {
    match fuse {
        None => ",\"fuse\":0".to_string(),
        Some(f) => format!(
            ",\"fuse\":1,\"fuse_blocks\":{},\"fuse_fused\":{},\"fuse_fallbacks\":{},\
             \"fused_total_cost_ms\":{},\"perlayer_total_cost_ms\":{},\
             \"fuse_fresh\":{},\"fuse_baseline_fresh\":{}",
            f.blocks,
            f.fused,
            f.fallbacks,
            f.fused_total_ms,
            f.perlayer_total_ms,
            f.fused_fresh,
            f.baseline_fresh,
        ),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1)?.parse().ok()
}

fn flag_string(args: &[String], flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1).cloned()
}

fn flag_path(args: &[String], flag: &str) -> Option<PathBuf> {
    flag_string(args, flag).map(PathBuf::from)
}
