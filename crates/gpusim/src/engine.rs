//! The execution engine: occupancy-aware wave scheduling with roofline
//! timing.
//!
//! The grid's blocks are scheduled onto the device in *waves* of
//! `blocks_per_sm * num_sms` concurrent blocks. Each wave takes the larger
//! of its compute time (flops over sustained throughput, scaled by thread
//! occupancy and bank conflicts) and its memory time (moved bytes over DRAM
//! bandwidth). This is deliberately not cycle-accurate: the lower-bound
//! theory predicts *traffic*, which the engine counts exactly; time only
//! needs to rank schedules the way a real GPU would (more traffic, lower
//! occupancy, worse coalescing => slower).

use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, KernelStats};
use crate::occupancy::{occupancy, Limiter};

/// Errors from simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The block shape cannot run on the device at all.
    InfeasibleBlock { name: String },
    /// The kernel has an empty grid.
    EmptyGrid { name: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InfeasibleBlock { name } => {
                write!(f, "kernel {name:?}: block shape infeasible on device")
            }
            SimError::EmptyGrid { name } => write!(f, "kernel {name:?}: empty grid"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates one kernel launch on `device`.
pub fn simulate(device: &DeviceSpec, kernel: &KernelDesc) -> Result<KernelStats, SimError> {
    if kernel.grid_blocks == 0 {
        return Err(SimError::EmptyGrid { name: kernel.name.clone() });
    }
    let occ = occupancy(device, kernel.block);
    if occ.limiter == Limiter::Infeasible {
        return Err(SimError::InfeasibleBlock { name: kernel.name.clone() });
    }

    let tx = device.transaction_bytes as u64;
    let per_block = kernel.work.traffic(tx);
    let traffic = per_block.scaled(kernel.grid_blocks);
    let moved_bytes = traffic.moved_bytes(tx);

    let concurrent = (occ.blocks_per_sm as u64 * device.num_sms as u64).max(1);
    let waves = kernel.grid_blocks.div_ceil(concurrent);

    // Per-full-wave times in seconds.
    let wave_flops = kernel.work.flops as f64 * concurrent as f64;
    // Low occupancy cannot hide latency: derate compute throughput by the
    // thread occupancy (floored so single-block-per-SM kernels still run).
    let occ_derate = occ.thread_occupancy.max(0.125);
    let flops_rate = device.sustained_gflops() * 1e9 * occ_derate;
    let compute_s = wave_flops / flops_rate * kernel.work.bank_conflict_factor;
    let wave_bytes = per_block.moved_bytes(tx) as f64 * concurrent as f64;
    let mem_s = wave_bytes / (device.dram_gbps * 1e9);
    let wave_s = compute_s.max(mem_s);

    // Last wave may be partial; charge it proportionally.
    let full_waves = kernel.grid_blocks / concurrent;
    let tail_blocks = kernel.grid_blocks % concurrent;
    let mut total_s = full_waves as f64 * wave_s;
    if tail_blocks > 0 {
        // The tail wave still occupies whole SMs; scale by the tail's
        // share of concurrency but no lower than one block's time.
        let share = (tail_blocks as f64 / concurrent as f64).max(1.0 / concurrent as f64);
        total_s += wave_s * share;
    }
    total_s += device.launch_overhead_us * 1e-6;

    let total_flops = kernel.work.flops as f64 * kernel.grid_blocks as f64;
    Ok(KernelStats {
        name: kernel.name.clone(),
        time_ms: total_s * 1e3,
        gflops: total_flops / total_s / 1e9,
        traffic,
        moved_bytes,
        blocks_per_sm: occ.blocks_per_sm,
        waves,
        memory_bound: mem_s > compute_s,
    })
}

/// Simulates a sequence of dependent kernels (a layer pipeline); times add.
pub fn simulate_sequence(
    device: &DeviceSpec,
    kernels: &[KernelDesc],
) -> Result<SequenceStats, SimError> {
    let mut stats = Vec::with_capacity(kernels.len());
    for k in kernels {
        stats.push(simulate(device, k)?);
    }
    Ok(SequenceStats::from_stats(stats))
}

/// Aggregate over a kernel sequence.
#[derive(Debug, Clone)]
pub struct SequenceStats {
    /// Per-kernel results in launch order.
    pub kernels: Vec<KernelStats>,
    /// End-to-end time, ms.
    pub time_ms: f64,
    /// Total useful elements moved (the measured `Q`).
    pub q_elems: u64,
    /// Total DRAM bytes moved.
    pub moved_bytes: u64,
    /// Aggregate arithmetic rate, GFLOP/s.
    pub gflops: f64,
}

impl SequenceStats {
    fn from_stats(kernels: Vec<KernelStats>) -> Self {
        let time_ms: f64 = kernels.iter().map(|k| k.time_ms).sum();
        let q_elems = kernels.iter().map(|k| k.q_elems()).sum();
        let moved_bytes = kernels.iter().map(|k| k.moved_bytes).sum();
        let total_flops: f64 = kernels.iter().map(|k| k.gflops * k.time_ms * 1e6).sum();
        let gflops = if time_ms > 0.0 { total_flops / (time_ms * 1e6) } else { 0.0 };
        Self { kernels, time_ms, q_elems, moved_bytes, gflops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockWork;
    use crate::memory::TileAccess;
    use crate::occupancy::BlockShape;

    fn device() -> DeviceSpec {
        DeviceSpec::gtx1080ti()
    }

    fn simple_kernel(grid: u64, flops: u64, read_elems: u64) -> KernelDesc {
        KernelDesc {
            name: "test".into(),
            grid_blocks: grid,
            block: BlockShape { threads: 256, smem_bytes: 16 * 1024 },
            work: BlockWork::new(flops).read(TileAccess::contiguous(read_elems)),
        }
    }

    #[test]
    fn traffic_counted_exactly() {
        let k = simple_kernel(100, 1000, 64);
        let s = simulate(&device(), &k).unwrap();
        assert_eq!(s.traffic.read_elems, 6400);
        assert_eq!(s.q_elems(), 6400);
    }

    #[test]
    fn compute_bound_kernel_times_scale_with_flops() {
        let a = simulate(&device(), &simple_kernel(1000, 1_000_000, 8)).unwrap();
        let b = simulate(&device(), &simple_kernel(1000, 2_000_000, 8)).unwrap();
        assert!(!a.memory_bound);
        assert!(b.time_ms > 1.5 * a.time_ms, "{} vs {}", b.time_ms, a.time_ms);
    }

    #[test]
    fn memory_bound_kernel_times_scale_with_bytes() {
        let a = simulate(&device(), &simple_kernel(10000, 100, 4096)).unwrap();
        let b = simulate(&device(), &simple_kernel(10000, 100, 8192)).unwrap();
        assert!(a.memory_bound);
        assert!(b.time_ms > 1.5 * a.time_ms);
    }

    #[test]
    fn gflops_below_peak() {
        let s = simulate(&device(), &simple_kernel(10000, 10_000_000, 8)).unwrap();
        assert!(s.gflops <= device().peak_gflops());
        assert!(s.gflops > 0.1 * device().peak_gflops());
    }

    #[test]
    fn more_waves_more_time() {
        let small = simulate(&device(), &simple_kernel(56, 1_000_000, 64)).unwrap();
        let large = simulate(&device(), &simple_kernel(560, 1_000_000, 64)).unwrap();
        assert!(large.waves > small.waves);
        assert!(large.time_ms > small.time_ms);
    }

    #[test]
    fn bank_conflicts_slow_compute() {
        let mut k = simple_kernel(1000, 1_000_000, 8);
        let base = simulate(&device(), &k).unwrap();
        k.work = k.work.with_bank_conflicts(2.0);
        let conflicted = simulate(&device(), &k).unwrap();
        assert!(conflicted.time_ms > 1.5 * base.time_ms);
    }

    #[test]
    fn infeasible_block_rejected() {
        let mut k = simple_kernel(10, 100, 8);
        k.block.smem_bytes = 80 * 1024; // above the 48 KiB per-block cap
        assert!(matches!(simulate(&device(), &k), Err(SimError::InfeasibleBlock { .. })));
    }

    #[test]
    fn empty_grid_rejected() {
        let k = simple_kernel(0, 1, 1);
        assert!(matches!(simulate(&device(), &k), Err(SimError::EmptyGrid { .. })));
    }

    #[test]
    fn sequence_adds_times_and_traffic() {
        let d = device();
        let ks = vec![simple_kernel(100, 1000, 64), simple_kernel(200, 1000, 32)];
        let seq = simulate_sequence(&d, &ks).unwrap();
        assert_eq!(seq.kernels.len(), 2);
        assert_eq!(seq.q_elems, 6400 + 6400);
        let sum: f64 = seq.kernels.iter().map(|k| k.time_ms).sum();
        assert!((seq.time_ms - sum).abs() < 1e-12);
    }

    #[test]
    fn occupancy_derating_matters() {
        // Same work, one giant-smem block per SM vs many small blocks.
        let d = device();
        let lean = KernelDesc {
            name: "lean".into(),
            grid_blocks: 1000,
            block: BlockShape { threads: 256, smem_bytes: 8 * 1024 },
            work: BlockWork::new(1_000_000),
        };
        let fat = KernelDesc {
            name: "fat".into(),
            grid_blocks: 1000,
            block: BlockShape { threads: 64, smem_bytes: 48 * 1024 },
            work: BlockWork::new(1_000_000),
        };
        let a = simulate(&d, &lean).unwrap();
        let b = simulate(&d, &fat).unwrap();
        assert!(b.time_ms > a.time_ms, "fat {} lean {}", b.time_ms, a.time_ms);
    }
}
