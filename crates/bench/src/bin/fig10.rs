//! Figure 10 — batched direct convolution vs cuDNN stand-in on the 1080Ti:
//! `Hin = Win in {14, 56, 112}`, `C_out = 128`, `C_in = 256`,
//! `H_ker = W_ker = 3`, `mu = 1`, batch in {32, 64, 128}.

use iolb_bench::{banner, cudnn_direct_ms, fmt_speedup, ours_fast_ms};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::gtx1080ti();
    banner(
        "Figure 10: batched direct convolution vs cuDNN stand-in",
        "Cout = 128, Cin = 256, 3x3, stride 1, GTX 1080 Ti (simulated)",
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "Hin/Win", "batch", "ours (ms)", "cudnn (ms)", "speedup"
    );
    // Paper reference speedups for comparison in EXPERIMENTS.md.
    for hw in [14usize, 56, 112] {
        for batch in [32usize, 64, 128] {
            let shape = ConvShape::square(256, hw, 128, 3, 1, 1).with_batch(batch);
            let ours =
                ours_fast_ms(&shape, TileKind::Direct, &device).expect("plannable batched shape");
            let base = cudnn_direct_ms(&shape, &device);
            println!(
                "{hw:>8} {batch:>8} {ours:>12.4} {base:>12.4} {:>10}",
                fmt_speedup(base / ours)
            );
        }
        println!();
    }
    println!("Paper reference: ~1.51x average; speedup grows with Hin/Win (small");
    println!("14x14 images show ~1.0x or below, 112x112 up to ~2.5x).");
}
