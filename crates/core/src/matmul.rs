//! Generality check: the classic matrix-multiplication I/O bound derived
//! through the paper's *composite* machinery.
//!
//! The paper's framework (Theorem 4.6) claims to cover "any arbitrary
//! composite algorithm". Dense `C = A·B` is the canonical test: it has the
//! same two-step structure as the direct convolution — a product step
//! (`n³` elementwise products `a_ik·b_kj`) followed by summation trees
//! (one per output, `n` leaves each) — and its optimal I/O is the textbook
//! `Θ(n³/√S)` (Hong & Kung 1981; Kwasniewski et al. 2019 sharpened the
//! constant to `2n³/√S`).
//!
//! Step 1's generation bound mirrors Lemma 4.9 with reuse factor `R`
//! replaced by the operand reuse of GEMM: a dominator budget of `h`
//! entries of `A` and `B` can generate at most `2S√h` products when the
//! minimum set is capped at `S` (the same `k₀ ≤ √h`-row counting argument,
//! with each `A`-entry reusable by at most the `S` active outputs' columns
//! — we keep the paper's √-form with R = 1 per-pair reuse folded into the
//! constant). Step 2 is Lemma 4.10 verbatim. The result reproduces the
//! `n³/√S` law with a constant within the same factor-of-4 family the
//! paper's conv bound carries.

use crate::phi_psi::{DirectProductStep, StepBound, SummationTreeStep};

/// Square matmul problem `C[n x n] = A[n x n] * B[n x n]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulShape {
    pub n: usize,
}

impl MatmulShape {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }

    /// Computed (internal + output) DAG vertices: `n³` products plus
    /// `n² (n - 1)` summation-tree vertices (Lemma 4.7 with `k = n`) —
    /// `2n³ - n²` in total, the matmul analogue of Lemma 4.8.
    pub fn vertex_count(&self) -> u64 {
        let n = self.n as u64;
        2 * n * n * n - n * n
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        let n = self.n as u64;
        n * n * n
    }
}

/// Step-bound sequence for matmul: the product step behaves like the
/// direct convolution's with unit sliding-window reuse (each `(a, b)` pair
/// multiplies once), so `phi_1(h) <= 2S sqrt(h)`.
pub fn matmul_steps() -> Vec<Box<dyn StepBound>> {
    vec![Box::new(DirectProductStep { reuse: 1.0 }), Box::new(SummationTreeStep)]
}

/// `T(S)` closed form, mirroring Lemma 4.11 with `R = 1`:
/// `T(S) <= 4 S sqrt(S) + S - 1`.
pub fn t_closed(s: f64) -> f64 {
    4.0 * s * s.sqrt() + s - 1.0
}

/// The composite-machinery matmul bound:
/// `Q >= (2n^3 - n^2) / (8 sqrt(2S) + 2 - 1/S) - S = Omega(n^3 / sqrt(S))`.
pub fn io_lower_bound(shape: &MatmulShape, s: f64) -> f64 {
    let v = shape.vertex_count() as f64;
    let denom = 8.0 * (2.0 * s).sqrt() + 2.0 - 1.0 / s;
    (v / denom - s).max(0.0)
}

/// Leading-order form `n^3 / (4 sqrt(2S))` for comparison against the
/// literature's `2 n^3 / sqrt(S)` (Kwasniewski et al.): same law, constant
/// `8sqrt(2)` looser — the generic dominator-counting argument trades
/// tightness for applicability to arbitrary composites.
pub fn io_lower_bound_leading(shape: &MatmulShape, s: f64) -> f64 {
    shape.macs() as f64 / (4.0 * (2.0 * s).sqrt())
}

/// I/O of the classic blocked GEMM schedule (square `b x b` output blocks
/// with `b = sqrt(S)` resident, operands streamed):
/// `Q ~= 2 n^3 / sqrt(S) + n^2` — the matmul analogue of Eq. 21.
pub fn blocked_schedule_io(shape: &MatmulShape, s: f64) -> f64 {
    let n = shape.n as f64;
    2.0 * n * n * n / s.sqrt() + n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite;
    use crate::composite::t_bound;

    #[test]
    fn vertex_count_matches_tree_structure() {
        // n = 4: 64 products + 16 trees of (4-2) internal + 1 output.
        let m = MatmulShape::new(4);
        assert_eq!(m.vertex_count(), 64 + 16 * 3);
    }

    #[test]
    fn closed_t_matches_numeric_t() {
        let steps = matmul_steps();
        for s in [64.0, 1024.0, 16384.0] {
            let numeric = t_bound(&steps, s).t;
            let closed = t_closed(s);
            assert!(numeric <= closed * 1.0001, "S={s}: {numeric} > {closed}");
            assert!(numeric >= 0.999 * closed, "S={s}: {numeric} << {closed}");
        }
    }

    #[test]
    fn generic_theorem_matches_closed_bound() {
        let m = MatmulShape::new(512);
        let s = 1024.0;
        let generic = composite::io_lower_bound(&matmul_steps(), m.vertex_count() as f64, s);
        let closed = io_lower_bound(&m, s);
        let rel = (generic - closed).abs() / closed;
        assert!(rel < 0.02, "generic {generic} closed {closed}");
    }

    #[test]
    fn reproduces_the_inverse_sqrt_s_law() {
        let m = MatmulShape::new(1024);
        let q1 = io_lower_bound(&m, 256.0);
        let q4 = io_lower_bound(&m, 1024.0);
        let ratio = q1 / q4;
        assert!((1.9..2.1).contains(&ratio), "not 1/sqrt(S): {ratio}");
    }

    #[test]
    fn blocked_gemm_dominates_the_bound() {
        for n in [256usize, 1024] {
            let m = MatmulShape::new(n);
            for s in [256.0, 4096.0] {
                let q = blocked_schedule_io(&m, s);
                let lb = io_lower_bound(&m, s);
                assert!(q >= lb, "n={n} S={s}: blocked {q} < bound {lb}");
                // ... and within the generic bound's constant family
                // (8sqrt(2)/... ~ 23x between loose bound and schedule).
                assert!(q < 32.0 * lb.max(1.0), "n={n} S={s}: gap too large");
            }
        }
    }

    #[test]
    fn leading_form_tracks_precise_bound() {
        let m = MatmulShape::new(2048);
        for s in [512.0, 4096.0] {
            let lead = io_lower_bound_leading(&m, s);
            let precise = io_lower_bound(&m, s);
            let rel = (lead - precise).abs() / precise;
            assert!(rel < 0.1, "S={s}: lead {lead} precise {precise}");
        }
    }

    #[test]
    fn conv_with_1x1_kernel_degenerates_to_matmul_law() {
        // A 1x1-kernel convolution IS a matmul (C_out x C_in by
        // C_in x HW): both bounds must scale identically in S.
        use crate::shapes::ConvShape;
        let conv = ConvShape::square(256, 32, 256, 1, 1, 0);
        let m = MatmulShape::new(256); // same order of work
                                       // Same 1/sqrt(S) law (both ratios ~2 for a 4x S step); the small
                                       // spread comes from the -S slack at different problem volumes.
        let rc = crate::direct::io_lower_bound(&conv, 1024.0)
            / crate::direct::io_lower_bound(&conv, 4096.0);
        let rm = io_lower_bound(&m, 1024.0) / io_lower_bound(&m, 4096.0);
        assert!((rc - rm).abs() < 0.25, "conv {rc} vs matmul {rm}");
        assert!((1.8..2.3).contains(&rc) && (1.8..2.3).contains(&rm));
    }
}
