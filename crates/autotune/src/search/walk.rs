//! The paper's auto-tuning engine searcher: **parallel greedy random
//! walks** over the pruned searching domain (§6.2, "Searching Process").
//!
//! `n_s` walkers start from random configurations; each step, a walker
//! proposes a random neighbour and moves when the *predicted* cost
//! improves ("each random walk tends to converge on a configuration that
//! has lower predicted costs"). The converged walker positions become the
//! next measurement batch and are kept as the initial guesses for the
//! following round. Walkers run concurrently under rayon — the
//! "effective parallel searching method" of §8. Each worker chunk owns a
//! deterministic seed derived from the chunk index, so the proposals are
//! independent of the physical thread count.

use super::{dedupe, top_up, History, Searcher};
use crate::cost_model::CostModel;
use crate::features::featurize;
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parallel random-walk searcher (the ATE explorer).
pub struct ParallelRandomWalk {
    walkers: Vec<ScheduleConfig>,
    /// Walk steps per proposal round.
    pub steps_per_round: usize,
    /// Probability of restarting a converged walker from a fresh sample.
    pub restart_prob: f64,
    /// OS threads used for the concurrent walks.
    pub threads: usize,
    /// Analytic warm-start configurations (e.g. the optimality-condition
    /// tile): consumed as the first walker positions. This is the point of
    /// the lower-bound theory — the searcher starts where Eq. 20/22 says
    /// the optimum lives instead of cold.
    pub seeds: Vec<ScheduleConfig>,
}

impl ParallelRandomWalk {
    pub fn new() -> Self {
        Self {
            walkers: Vec::new(),
            steps_per_round: 12,
            restart_prob: 0.15,
            threads: 4,
            seeds: Vec::new(),
        }
    }

    /// With analytic warm-start configurations.
    pub fn with_seeds(seeds: Vec<ScheduleConfig>) -> Self {
        Self { seeds, ..Self::new() }
    }
}

impl Default for ParallelRandomWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl Searcher for ParallelRandomWalk {
    fn propose(
        &mut self,
        space: &ConfigSpace,
        model: &dyn CostModel,
        history: &History,
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<ScheduleConfig> {
        // Warm starts first, then random seeds / occasional restarts.
        while self.walkers.len() < batch {
            if let Some(seed) = self.seeds.pop() {
                if space.contains(&seed) {
                    self.walkers.push(seed);
                }
                continue;
            }
            match space.sample(rng, 256) {
                Some(cfg) => self.walkers.push(cfg),
                None => break,
            }
        }
        for w in self.walkers.iter_mut() {
            if rng.gen_bool(self.restart_prob) {
                if let Some(fresh) = space.sample(rng, 256) {
                    *w = fresh;
                }
            }
        }
        if self.walkers.is_empty() {
            return Vec::new();
        }

        // Concurrent greedy walks: each worker owns a disjoint slice of
        // walkers (chunked), with a derived deterministic seed.
        let steps = self.steps_per_round;
        let threads = self.threads.max(1).min(self.walkers.len());
        let chunk = self.walkers.len().div_ceil(threads);
        let base_seed: u64 = rng.gen();
        self.walkers.par_chunks_mut(chunk).enumerate().for_each(|(t, slice)| {
            let mut local = StdRng::seed_from_u64(base_seed ^ ((t as u64) << 32));
            for w in slice.iter_mut() {
                let mut cur = model.predict(&featurize(&space.shape, space.kind, w));
                for _ in 0..steps {
                    let cand = space.neighbor(w, &mut local);
                    let cost = model.predict(&featurize(&space.shape, space.kind, &cand));
                    if cost < cur {
                        *w = cand;
                        cur = cost;
                    }
                }
            }
        });

        let out = dedupe(self.walkers.clone(), history, batch);
        top_up(out, space, history, batch, rng)
    }

    fn warm_start(&mut self, seeds: &[ScheduleConfig]) {
        // `propose` consumes `self.seeds` back-to-front; append reversed
        // so the strongest (first) external seed is placed first.
        self.seeds.extend(seeds.iter().rev().copied());
    }

    fn name(&self) -> &'static str {
        "parallel-random-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::{CostModel, NoModel};
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;

    fn space(pruned: bool) -> ConfigSpace {
        ConfigSpace::new(
            ConvShape::square(64, 28, 32, 3, 1, 1),
            TileKind::Direct,
            96 * 1024,
            pruned,
        )
    }

    #[test]
    fn proposals_valid_even_without_model() {
        let space = space(true);
        let mut rng = StdRng::seed_from_u64(1);
        let h = History::new();
        let mut s = ParallelRandomWalk::new();
        let out = s.propose(&space, &NoModel, &h, 8, &mut rng);
        assert!(!out.is_empty());
        for cfg in &out {
            assert!(space.contains(cfg));
        }
    }

    /// Synthetic model with a clean gradient toward large tile volume.
    struct PreferBigTiles;
    impl CostModel for PreferBigTiles {
        fn predict(&self, f: &[f64]) -> f64 {
            100.0 - f[3] // log2 tile volume
        }
        fn train(&mut self, _: &[Vec<f64>], _: &[f64]) {}
        fn is_trained(&self) -> bool {
            true
        }
    }

    #[test]
    fn walkers_descend_the_predicted_cost() {
        let space = space(false);
        let mut rng = StdRng::seed_from_u64(2);
        let h = History::new();
        let mut s = ParallelRandomWalk { restart_prob: 0.0, ..ParallelRandomWalk::new() };
        let first = s.propose(&space, &PreferBigTiles, &h, 8, &mut rng);
        let v0: f64 =
            first.iter().map(|c| c.tile_volume() as f64).sum::<f64>() / first.len() as f64;
        for _ in 0..6 {
            let _ = s.propose(&space, &PreferBigTiles, &h, 8, &mut rng);
        }
        let last = s.propose(&space, &PreferBigTiles, &h, 8, &mut rng);
        let v1: f64 = last.iter().map(|c| c.tile_volume() as f64).sum::<f64>() / last.len() as f64;
        assert!(v1 > v0, "walkers did not descend: {v0} -> {v1}");
    }

    #[test]
    fn walks_are_deterministic_given_seed() {
        let space = space(true);
        let h = History::new();
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut s = ParallelRandomWalk::new();
            s.propose(&space, &NoModel, &h, 6, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give the same proposals");
    }
}
