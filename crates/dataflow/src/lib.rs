//! # iolb-dataflow — near-I/O-optimal convolution schedules
//!
//! The executable form of the paper's §5: dataflow designs derived from the
//! I/O lower bounds, lowered two ways —
//!
//! * to **simulator kernels** ([`direct::direct_kernel`],
//!   [`winograd::winograd_kernel`]) whose exact traffic the `iolb-gpusim`
//!   engine counts and times, and
//! * to **real CPU execution** ([`exec`]) with crossbeam thread blocks and
//!   literal staging buffers, verified against the reference convolution.
//!
//! [`config`] holds the Table 1 schedule configuration and its constraint
//! checking; [`baselines`] provides the cuDNN/MIOpen stand-ins (im2col +
//! GEMM, naive direct, unfused Winograd); [`analysis`] compares measured
//! traffic against the lower bounds.
//!
//! ```
//! use iolb_core::optimality::TileKind;
//! use iolb_core::shapes::ConvShape;
//! use iolb_dataflow::{analyze_direct, ScheduleConfig};
//! use iolb_tensor::layout::Layout;
//!
//! let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
//! let cfg = ScheduleConfig {
//!     x: 14, y: 14, z: 16, nxt: 7, nyt: 7, nzt: 4,
//!     sb_bytes: 32 * 1024, layout: Layout::Chw,
//! };
//! cfg.validate(&shape, TileKind::Direct, 96 * 1024, false).unwrap();
//! // The lowered schedule's exact traffic never beats the lower bound.
//! let report = analyze_direct(&shape, &cfg);
//! assert!(report.ratio >= 1.0);
//! ```

pub mod analysis;
pub mod baselines;
pub mod config;
pub mod direct;
pub mod exec;
pub mod winograd;

pub use analysis::{analyze_direct, analyze_winograd, OptimalityReport};
pub use config::{ConfigError, ScheduleConfig};
pub use direct::direct_kernel;
pub use exec::{execute_direct, execute_winograd};
pub use winograd::winograd_kernel;
