//! Computation DAGs for the red-blue pebble game (paper §2.1).
//!
//! Vertices are operations, edges are data dependencies. Vertices carry an
//! optional *step* label assigning them to a sub-computation of a
//! multi-step partition (Definition 4.1).

/// Vertex identifier (index into the DAG's vertex arrays).
pub type VertexId = u32;

/// A directed acyclic graph with per-vertex step labels.
#[derive(Debug, Clone)]
pub struct Dag {
    preds: Vec<Vec<VertexId>>,
    succs: Vec<Vec<VertexId>>,
    /// Sub-computation index of each vertex (0 for inputs / single-step
    /// algorithms).
    step: Vec<u32>,
}

impl Dag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self { preds: Vec::new(), succs: Vec::new(), step: Vec::new() }
    }

    /// Adds a vertex labelled with sub-computation `step`; returns its id.
    pub fn add_vertex(&mut self, step: u32) -> VertexId {
        let id = self.preds.len() as VertexId;
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.step.push(step);
        id
    }

    /// Adds a dependency edge `from -> to`. Panics on self-loops; cycle
    /// freedom is checked by [`Dag::validate`].
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) {
        assert_ne!(from, to, "self-loop");
        assert!((from as usize) < self.len() && (to as usize) < self.len());
        self.preds[to as usize].push(from);
        self.succs[from as usize].push(to);
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the DAG has no vertices.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Immediate predecessors of `v`.
    pub fn preds(&self, v: VertexId) -> &[VertexId] {
        &self.preds[v as usize]
    }

    /// Immediate successors of `v`.
    pub fn succs(&self, v: VertexId) -> &[VertexId] {
        &self.succs[v as usize]
    }

    /// Step label of `v`.
    pub fn step(&self, v: VertexId) -> u32 {
        self.step[v as usize]
    }

    /// Vertices with no predecessors (the game's initial blue pebbles).
    pub fn inputs(&self) -> Vec<VertexId> {
        (0..self.len() as VertexId).filter(|&v| self.preds(v).is_empty()).collect()
    }

    /// Vertices with no successors (must hold blue pebbles at game end).
    pub fn outputs(&self) -> Vec<VertexId> {
        (0..self.len() as VertexId).filter(|&v| self.succs(v).is_empty()).collect()
    }

    /// Vertices that are neither inputs nor outputs.
    pub fn internals(&self) -> Vec<VertexId> {
        (0..self.len() as VertexId)
            .filter(|&v| !self.preds(v).is_empty() && !self.succs(v).is_empty())
            .collect()
    }

    /// Number of computed vertices (internal + output) — the `|V|` entering
    /// Theorem 4.6 (pure inputs are never "computed").
    pub fn computed_count(&self) -> u64 {
        (0..self.len() as VertexId).filter(|&v| !self.preds(v).is_empty()).count() as u64
    }

    /// A topological order (Kahn). Panics if the graph has a cycle — use
    /// [`Dag::validate`] for a checked variant.
    pub fn topo_order(&self) -> Vec<VertexId> {
        self.try_topo_order().expect("graph has a cycle")
    }

    /// Topological order, or `None` if cyclic.
    pub fn try_topo_order(&self) -> Option<Vec<VertexId>> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.preds[v].len()).collect();
        let mut queue: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &s in self.succs(v) {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Structural validation: acyclic and edges in range (the latter is
    /// enforced on insertion; this re-checks for defensive use).
    pub fn validate(&self) -> Result<(), DagError> {
        if self.try_topo_order().is_none() {
            return Err(DagError::Cyclic);
        }
        Ok(())
    }

    /// Vertex-generation test (Definition 4.2): does `blockers` generate
    /// `target`, i.e. does *every* path from an input to `target` pass
    /// through some vertex of `blockers`? Implemented as reachability from
    /// the inputs with `blockers` removed.
    pub fn generates(&self, blockers: &[VertexId], target: VertexId) -> bool {
        let mut blocked = vec![false; self.len()];
        for &b in blockers {
            blocked[b as usize] = true;
        }
        if blocked[target as usize] {
            // A vertex trivially generates itself (every path "contains" it).
            return true;
        }
        // BFS from inputs avoiding blocked vertices; if we reach `target`,
        // some path evades the blockers.
        let mut seen = vec![false; self.len()];
        let mut queue: Vec<VertexId> =
            self.inputs().into_iter().filter(|&v| !blocked[v as usize]).collect();
        for &v in &queue {
            seen[v as usize] = true;
        }
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            if v == target {
                return false;
            }
            for &s in self.succs(v) {
                if !seen[s as usize] && !blocked[s as usize] {
                    seen[s as usize] = true;
                    queue.push(s);
                }
            }
        }
        true
    }

    /// The full generated set `Theta(blockers)` (Definition 4.2): all
    /// vertices generated by `blockers`. `O(V * E)` — fine for the test
    /// DAG sizes this crate targets.
    pub fn generated_set(&self, blockers: &[VertexId]) -> Vec<VertexId> {
        // Complement view: run the blocked BFS once, everything NOT reached
        // is generated.
        let mut blocked = vec![false; self.len()];
        for &b in blockers {
            blocked[b as usize] = true;
        }
        let mut reach = vec![false; self.len()];
        let mut queue: Vec<VertexId> =
            self.inputs().into_iter().filter(|&v| !blocked[v as usize]).collect();
        for &v in &queue {
            reach[v as usize] = true;
        }
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &s in self.succs(v) {
                if !reach[s as usize] && !blocked[s as usize] {
                    reach[s as usize] = true;
                    queue.push(s);
                }
            }
        }
        (0..self.len() as VertexId).filter(|&v| !reach[v as usize]).collect()
    }

    /// Validates that the step labels form a *multi-step partition*
    /// (Definition 4.1): edges never go from a later step to an earlier
    /// one, and every cross-step edge lands exactly one step later (data
    /// flows through the steps in order). Input vertices (step of their
    /// consumers' choosing) are exempt from the one-step rule.
    pub fn validate_multistep(&self) -> Result<(), DagError> {
        for v in 0..self.len() as VertexId {
            for &s in self.succs(v) {
                let from = self.step(v);
                let to = self.step(s);
                if to < from {
                    return Err(DagError::StepBackEdge { from: v, to: s });
                }
                if self.preds(v).is_empty() {
                    continue; // pure inputs feed any step
                }
                if to > from + 1 {
                    return Err(DagError::StepSkip { from: v, to: s });
                }
            }
        }
        Ok(())
    }

    /// Vertices of a given step.
    pub fn step_vertices(&self, step: u32) -> Vec<VertexId> {
        (0..self.len() as VertexId).filter(|&v| self.step(v) == step).collect()
    }

    /// Output set of step `j` (the `Õ_j` of §4.1.1): vertices of step `j`
    /// with a successor in a later step, or with no successors at all.
    pub fn step_outputs(&self, step: u32) -> Vec<VertexId> {
        self.step_vertices(step)
            .into_iter()
            .filter(|&v| {
                self.succs(v).is_empty() || self.succs(v).iter().any(|&s| self.step(s) > step)
            })
            .collect()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

impl Default for Dag {
    fn default() -> Self {
        Self::new()
    }
}

/// DAG validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains a cycle.
    Cyclic,
    /// An edge goes from a later step to an earlier one.
    StepBackEdge { from: VertexId, to: VertexId },
    /// An edge skips over an intermediate step.
    StepSkip { from: VertexId, to: VertexId },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Cyclic => write!(f, "graph has a cycle"),
            DagError::StepBackEdge { from, to } => {
                write!(f, "edge {from}->{to} goes backwards across steps")
            }
            DagError::StepSkip { from, to } => {
                write!(f, "edge {from}->{to} skips a step")
            }
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Dag {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(1);
        let c = d.add_vertex(1);
        let e = d.add_vertex(2);
        d.add_edge(a, b);
        d.add_edge(a, c);
        d.add_edge(b, e);
        d.add_edge(c, e);
        d
    }

    #[test]
    fn inputs_outputs_internals() {
        let d = diamond();
        assert_eq!(d.inputs(), vec![0]);
        assert_eq!(d.outputs(), vec![3]);
        assert_eq!(d.internals(), vec![1, 2]);
        assert_eq!(d.computed_count(), 3);
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topo_order();
        let pos: Vec<usize> =
            (0..4).map(|v| order.iter().position(|&x| x == v as u32).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detection() {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        d.add_edge(a, b);
        d.add_edge(b, a);
        assert_eq!(d.validate(), Err(DagError::Cyclic));
        assert!(d.try_topo_order().is_none());
    }

    #[test]
    fn generates_blocks_all_paths() {
        let d = diamond();
        // {1,2} generates 3: both paths from input 0 to 3 pass through them.
        assert!(d.generates(&[1, 2], 3));
        // {1} alone does not: the path through 2 evades it.
        assert!(!d.generates(&[1], 3));
        // The input itself generates everything.
        assert!(d.generates(&[0], 3));
        // A vertex generates itself.
        assert!(d.generates(&[3], 3));
    }

    #[test]
    fn generated_set_is_downstream_closure() {
        let d = diamond();
        let theta = d.generated_set(&[1, 2]);
        assert_eq!(theta, vec![1, 2, 3]);
        let theta0 = d.generated_set(&[0]);
        assert_eq!(theta0, vec![0, 1, 2, 3]);
        let theta_none: Vec<VertexId> = d.generated_set(&[]);
        assert!(theta_none.is_empty());
    }

    #[test]
    fn multistep_validation_accepts_diamond() {
        let d = diamond();
        assert_eq!(d.validate_multistep(), Ok(()));
        assert_eq!(d.step_vertices(1), vec![1, 2]);
        assert_eq!(d.step_outputs(1), vec![1, 2]);
        assert_eq!(d.step_outputs(2), vec![3]);
    }

    #[test]
    fn multistep_validation_rejects_back_edges() {
        let mut d = Dag::new();
        let a = d.add_vertex(2);
        let b = d.add_vertex(1);
        d.add_edge(a, b);
        // a is an input so the skip rule doesn't apply, but back-edges are
        // always invalid.
        assert!(matches!(d.validate_multistep(), Err(DagError::StepBackEdge { .. })));
    }

    #[test]
    fn multistep_validation_rejects_step_skips() {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        let c = d.add_vertex(2);
        d.add_edge(a, b); // b now internal of step 0
        d.add_edge(b, c); // 0 -> 2 skips step 1
        assert!(matches!(d.validate_multistep(), Err(DagError::StepSkip { .. })));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        d.add_edge(a, a);
    }

    #[test]
    fn chain_generation() {
        // 0 -> 1 -> 2 -> 3: {2} generates 3 but not 1.
        let mut d = Dag::new();
        let v: Vec<_> = (0..4).map(|_| d.add_vertex(0)).collect();
        for i in 0..3 {
            d.add_edge(v[i], v[i + 1]);
        }
        assert!(d.generates(&[2], 3));
        assert!(!d.generates(&[2], 1));
        assert_eq!(d.generated_set(&[1]), vec![1, 2, 3]);
    }
}
