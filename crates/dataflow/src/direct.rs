//! Lowering of the paper's near-I/O-optimal **direct-convolution dataflow**
//! (§5.2, Fig. 6) to a simulator kernel.
//!
//! One thread block owns one `x * y * z` output sub-block, kept resident in
//! shared memory for the whole computation (full output reuse — the insight
//! from `phi_2` dominating the lower bound). The block walks the channel
//! dimension in stages; each stage loads one `x' * y'` input tile at a
//! single channel (`alpha = 1`, §5.2) plus the corresponding `z` kernel
//! slices, and accumulates partial sums. Inputs and weights are therefore
//! read exactly once per sub-block, and outputs written exactly once.

use crate::config::ScheduleConfig;
use iolb_core::direct as core_direct;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::{BlockShape, BlockWork, KernelDesc, TileAccess};
use iolb_tensor::layout::Layout;

/// Input halo extents `x' = (x-1)*mu + Kh`, `y' = (y-1)*mu + Kw`.
pub fn halo(shape: &ConvShape, x: usize, y: usize) -> (usize, usize) {
    ((x - 1) * shape.stride + shape.kh, (y - 1) * shape.stride + shape.kw)
}

/// The global-memory access pattern of one `x' * y'` single-channel input
/// tile under the given layout.
pub fn input_tile_access(shape: &ConvShape, layout: Layout, xp: usize, yp: usize) -> TileAccess {
    // Halo rows can extend past the image edge into (free) zero padding;
    // the physical row never exceeds the image row, so the stride clamps
    // to the tile row (a tiny, conservative traffic overcount at borders).
    match layout {
        // Rows of the image are contiguous: x' rows of y' elements.
        Layout::Chw => TileAccess::tile(xp as u64, yp as u64, shape.win.max(yp) as u64),
        // Columns contiguous: y' rows of x' elements.
        Layout::Cwh => TileAccess::tile(yp as u64, xp as u64, shape.hin.max(xp) as u64),
        // Channel-innermost: every element of the tile is isolated by a
        // stride of C_in — the worst coalescing for single-channel stages.
        Layout::Hwc => TileAccess::tile((xp * yp) as u64, 1, shape.cin.max(1) as u64),
    }
}

/// Shared-memory bank-conflict factor of the staging stores per layout.
/// CHW staging is conflict-free; CWH transposes on the way in; HWC
/// scatters. Values are the simulator's modelling knob, not measurements.
pub fn bank_conflict_factor(layout: Layout) -> f64 {
    match layout {
        Layout::Chw => 1.0,
        Layout::Cwh => 1.12,
        Layout::Hwc => 1.25,
    }
}

/// Builds the simulator kernel for the direct dataflow under `cfg`.
///
/// The caller is responsible for having validated `cfg` against the shape
/// (tests do both); this function asserts the divisibility invariants it
/// relies on.
pub fn direct_kernel(shape: &ConvShape, cfg: &ScheduleConfig) -> KernelDesc {
    // Tiles divide the (slightly) padded output extents; edge blocks run
    // as full tiles, as on real hardware.
    let (hout, wout) = crate::config::padded_out(shape, iolb_core::optimality::TileKind::Direct);
    assert_eq!(hout % cfg.x, 0, "x must divide padded H_out");
    assert_eq!(wout % cfg.y, 0, "y must divide padded W_out");
    assert_eq!(shape.cout % cfg.z, 0, "z must divide C_out");

    let grid_blocks = (hout / cfg.x) as u64
        * (wout / cfg.y) as u64
        * (shape.cout / cfg.z) as u64
        * shape.batch as u64;

    let (xp, yp) = halo(shape, cfg.x, cfg.y);
    let flops = 2 * (cfg.x * cfg.y * cfg.z * shape.kh * shape.kw * shape.cin) as u64;

    let mut work = BlockWork::new(flops).with_bank_conflicts(bank_conflict_factor(cfg.layout));
    // Channel stages: one input tile + z kernel slices per input channel.
    // Weights are pre-packed at plan time into a stage-contiguous
    // [cin][z][Kh*Kw] layout (the one-time repack is amortised across
    // inference, as with cuDNN filter descriptors), so each stage's load
    // coalesces perfectly.
    let input_access = input_tile_access(shape, cfg.layout, xp, yp);
    let weight_access = TileAccess::contiguous((cfg.z * shape.kh * shape.kw) as u64);
    for _ in 0..shape.cin {
        work = work.read(input_access).read(weight_access);
    }
    // One write of the resident output sub-block.
    work =
        work.write(TileAccess::tile((cfg.x * cfg.z) as u64, cfg.y as u64, wout.max(cfg.y) as u64));

    KernelDesc {
        name: format!("direct-dataflow[{}x{}x{}]", cfg.x, cfg.y, cfg.z),
        grid_blocks,
        block: BlockShape { threads: cfg.threads(), smem_bytes: cfg.sb_bytes },
        work,
    }
}

/// Analytic I/O (elements) of this configuration per Eq. 20 + output
/// stores — the model the kernel's measured traffic must track.
pub fn analytic_io_elems(shape: &ConvShape, cfg: &ScheduleConfig) -> f64 {
    core_direct::dataflow_total_io(shape, cfg.x as f64, cfg.y as f64, cfg.z as f64)
}

/// Exact useful-element I/O of the lowered kernel (what the simulator will
/// count): per-block `cin * (x'y' + Kh Kw z)` reads plus `xyz` writes,
/// times the grid. Differs from Eq. 20 only by the halo
/// (`x' = (x-1)mu + Kh` vs the paper's `x' ~= mu x`).
pub fn exact_io_elems(shape: &ConvShape, cfg: &ScheduleConfig) -> u64 {
    let (hout, wout) = crate::config::padded_out(shape, iolb_core::optimality::TileKind::Direct);
    let blocks = (hout / cfg.x) as u64
        * (wout / cfg.y) as u64
        * (shape.cout / cfg.z) as u64
        * shape.batch as u64;
    let (xp, yp) = halo(shape, cfg.x, cfg.y);
    let per_block_reads =
        shape.cin as u64 * ((xp * yp) as u64 + (shape.kh * shape.kw * cfg.z) as u64);
    let per_block_writes = (cfg.x * cfg.y * cfg.z) as u64;
    blocks * (per_block_reads + per_block_writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_gpusim::{simulate, DeviceSpec};

    fn shape() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 14,
            y: 14,
            z: 16,
            nxt: 7,
            nyt: 7,
            nzt: 4,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn grid_covers_all_outputs() {
        let k = direct_kernel(&shape(), &cfg());
        // (56/14)^2 * (128/16) = 16 * 8 = 128 blocks.
        assert_eq!(k.grid_blocks, 128);
    }

    #[test]
    fn measured_io_matches_exact_formula() {
        let s = shape();
        let c = cfg();
        let k = direct_kernel(&s, &c);
        let stats = simulate(&DeviceSpec::gtx1080ti(), &k).unwrap();
        assert_eq!(stats.q_elems(), exact_io_elems(&s, &c));
    }

    #[test]
    fn exact_io_close_to_eq20_model() {
        // Halo inflates inputs by ((x+2)(y+2))/(xy) for 3x3 s1; with
        // x = y = 14 that is ~1.3 on the input term only.
        let s = shape();
        let c = cfg();
        let exact = exact_io_elems(&s, &c) as f64;
        let model = analytic_io_elems(&s, &c);
        assert!(exact >= model, "exact {exact} below model {model}");
        assert!(exact <= 1.5 * model, "exact {exact} far above model {model}");
    }

    #[test]
    fn io_above_lower_bound() {
        let s = shape();
        let c = cfg();
        let q = exact_io_elems(&s, &c) as f64;
        let lb = iolb_core::direct::io_lower_bound(&s, c.sb_elems());
        assert!(q >= lb, "measured {q} below bound {lb}");
    }

    #[test]
    fn optimal_tile_beats_skewed_tile() {
        // Same on-chip budget, tile at the optimality condition vs skewed.
        let s = shape();
        let good = cfg(); // xy = 196 ~ R z = 144
        let skew = ScheduleConfig { x: 2, y: 2, z: 128, nzt: 32, nxt: 1, nyt: 1, ..cfg() };
        assert!(skew.validate(&s, TileKind::Direct, 96 * 1024, false).is_ok());
        let q_good = exact_io_elems(&s, &good);
        let q_skew = exact_io_elems(&s, &skew);
        assert!(q_good < q_skew, "good {q_good} skew {q_skew}");
    }

    #[test]
    fn layout_changes_transactions_not_elements() {
        let s = shape();
        let d = DeviceSpec::gtx1080ti();
        let mut best = None;
        for layout in Layout::ALL {
            let c = ScheduleConfig { layout, ..cfg() };
            let stats = simulate(&d, &direct_kernel(&s, &c)).unwrap();
            // Useful elements are layout-invariant.
            assert_eq!(stats.q_elems(), exact_io_elems(&s, &c));
            let moved = stats.moved_bytes;
            best = Some(best.map_or(moved, |b: u64| b.min(moved)));
            if layout == Layout::Hwc {
                // Channel-innermost must move strictly more bytes than the
                // best (single-channel stages scatter).
                assert!(moved > best.unwrap());
            }
        }
    }

    #[test]
    fn batch_scales_grid() {
        let s = shape().with_batch(4);
        let k = direct_kernel(&s, &cfg());
        assert_eq!(k.grid_blocks, 4 * 128);
    }

    #[test]
    fn strided_conv_kernel() {
        let s = ConvShape::square(64, 111, 64, 3, 2, 1); // hout = 56
        let c = ScheduleConfig { z: 8, nzt: 2, sb_bytes: 24 * 1024, ..cfg() };
        let k = direct_kernel(&s, &c);
        assert_eq!(k.grid_blocks, (56 / 14) as u64 * (56 / 14) as u64 * 8);
        // Halo: x' = 13*2 + 3 = 29.
        assert_eq!(halo(&s, 14, 14), (29, 29));
    }
}
