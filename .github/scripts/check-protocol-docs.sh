#!/usr/bin/env bash
# Docs drift gate: the normative values cited in docs/PROTOCOL.md must
# match crates/service/src/wire.rs — the wire version, the frame cap,
# and the WireError taxonomy. Grep-level on purpose: the doc must cite
# the *literal* values an operator would see on the wire.
set -euo pipefail

WIRE=crates/service/src/wire.rs
DOC=docs/PROTOCOL.md
fail=0

version=$(sed -n 's/^pub const WIRE_VERSION: u32 = \([0-9][0-9]*\);.*/\1/p' "$WIRE")
[ -n "$version" ] || { echo "cannot extract WIRE_VERSION from $WIRE"; exit 1; }

shift_bits=$(sed -n 's/^pub const MAX_FRAME_BYTES: usize = 1 << \([0-9][0-9]*\);.*/\1/p' "$WIRE")
[ -n "$shift_bits" ] || { echo "cannot extract MAX_FRAME_BYTES from $WIRE"; exit 1; }
max_bytes=$((1 << shift_bits))

grep -qF "| \`WIRE_VERSION\` | \`$version\` |" "$DOC" || {
  echo "$DOC: constants table does not cite WIRE_VERSION = $version"
  fail=1
}
grep -qF "| \`MAX_FRAME_BYTES\` | \`$max_bytes\` (\`1 << $shift_bits\`) |" "$DOC" || {
  echo "$DOC: constants table does not cite MAX_FRAME_BYTES = $max_bytes (1 << $shift_bits)"
  fail=1
}

# Every example header in the doc must carry the current version.
while read -r cited; do
  if [ "$cited" != "$version" ]; then
    echo "$DOC: example header uses \"v\":$cited but WIRE_VERSION is $version"
    fail=1
  fi
done < <(grep -o '{"v":[0-9]*' "$DOC" | grep -o '[0-9]*$')

# Every WireError variant must be documented, and the doc must not
# document variants that no longer exist.
variants=$(awk '/^pub enum WireError \{/,/^\}/' "$WIRE" \
  | grep -oE '^    [A-Z][A-Za-z]+' | tr -d ' ')
[ -n "$variants" ] || { echo "cannot extract WireError variants from $WIRE"; exit 1; }
for v in $variants; do
  grep -q "\`$v" "$DOC" || { echo "$DOC: WireError::$v is undocumented"; fail=1; }
done
while read -r cited; do
  echo "$variants" | grep -qx "$cited" || {
    echo "$DOC: documents WireError::$cited, which $WIRE no longer defines"
    fail=1
  }
done < <(grep -o 'WireError::[A-Za-z]*' "$DOC" | sed 's/WireError:://' | sort -u)

# The proptest properties the doc cites must exist.
PROPS=crates/service/tests/proptest_wire.rs
while read -r prop; do
  grep -q "fn $prop" "$PROPS" || {
    echo "$DOC: cites property $prop, which $PROPS does not define"
    fail=1
  }
done < <(grep -oE '`[a-z_]+_(round_trip|rejected|panic[a-z_]*|rejected_[a-z_]+)[a-z_]*`' "$DOC" \
  | tr -d '\`' | sort -u)

if [ "$fail" -ne 0 ]; then
  echo "docs/PROTOCOL.md has drifted from the wire implementation"
  exit 1
fi
echo "protocol docs in sync (v$version, frame cap $max_bytes)"
