//! Tuning determinism under parallel measurement (ISSUE 1 acceptance
//! gate): the engine measures proposal batches on rayon, and that must
//! not perturb a single bit of the tuning trajectory.
//!
//! Run-to-run identity lives here; the parallel-vs-forced-serial check
//! lives in `determinism_serial.rs` — its own binary, because it
//! mutates `RAYON_NUM_THREADS` and environment writes must not race
//! sibling test threads' reads.

mod common;

use common::{assert_identical, run_tuning};
use conv_iolb::core::shapes::WinogradTile;
use conv_iolb::dataflow::exec::{execute_direct_with_path, execute_winograd_with_path};
use conv_iolb::dataflow::ScheduleConfig;
use conv_iolb::tensor::conv_ref::ConvParams;
use conv_iolb::tensor::kernel::KernelPath;
use conv_iolb::tensor::layout::Layout;
use conv_iolb::tensor::tensor::Tensor4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn same_seed_gives_identical_convergence_curves_with_rayon() {
    let a = run_tuning(0xD5EED);
    let b = run_tuning(0xD5EED);
    assert!(!a.curve.is_empty(), "tuning produced an empty curve");
    assert_identical(&a, &b, "run-to-run");
}

/// The `IOLB_KERNEL` switch must be invisible to determinism: both
/// dataflow executors produce the same bits on the scalar and vector
/// kernel paths, so nothing downstream of them (timing, tuning, replay)
/// can depend on which path a host dispatches to. Uses the explicit
/// `-_with_path` APIs — the env-var half of the contract lives in
/// `determinism_serial.rs`, the only binary allowed to mutate the
/// environment.
#[test]
fn kernel_path_switch_cannot_perturb_executor_bits() {
    let mut rng = StdRng::seed_from_u64(0xD5EED);
    let mut fill = |t: &mut Tensor4| {
        for v in t.as_mut_slice().iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
    };
    let mut input = Tensor4::zeros(2, 8, 8, 8);
    let mut weights = Tensor4::zeros(8, 8, 3, 3);
    fill(&mut input);
    fill(&mut weights);
    let params = ConvParams { stride: 1, pad: 1 };
    let cfg = ScheduleConfig {
        x: 4,
        y: 4,
        z: 2,
        nxt: 1,
        nyt: 1,
        nzt: 1,
        sb_bytes: 48 * 1024,
        layout: Layout::Chw,
    };

    let direct_scalar =
        execute_direct_with_path(&input, &weights, params, &cfg, 4, KernelPath::Scalar);
    let direct_vector =
        execute_direct_with_path(&input, &weights, params, &cfg, 4, KernelPath::Vector);
    assert_eq!(
        direct_scalar.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        direct_vector.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "direct executor bits differ across kernel paths"
    );

    let tile = WinogradTile::F2X3;
    let wino_scalar =
        execute_winograd_with_path(&input, &weights, params, tile, &cfg, 4, KernelPath::Scalar);
    let wino_vector =
        execute_winograd_with_path(&input, &weights, params, tile, &cfg, 4, KernelPath::Vector);
    assert_eq!(
        wino_scalar.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        wino_vector.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "winograd executor bits differ across kernel paths"
    );
}

#[test]
fn different_seeds_explore_differently() {
    // Guards against the determinism above being vacuous (e.g. a seed
    // that is never threaded into the search).
    let a = run_tuning(1);
    let b = run_tuning(2);
    assert!(
        a.best != b.best || a.curve.len() != b.curve.len() || a.to_best != b.to_best,
        "two different seeds produced byte-identical tuning runs"
    );
}
