//! SM occupancy model.
//!
//! How many thread blocks fit on one SM is limited by shared memory,
//! thread slots and the hardware block-slot cap. The paper's searching
//! domain encodes the shared-memory constraint directly
//! (`S_b <= S_sm / 2`, Table 1: "at least two thread blocks ... on one
//! SM"); the simulator computes the general limit.

use crate::device::DeviceSpec;

/// Resource request of one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
}

/// Occupancy outcome for a block shape on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// Fraction of the SM's thread slots in use (0..=1).
    pub thread_occupancy: f64,
    /// Which resource capped the block count.
    pub limiter: Limiter,
}

/// The binding occupancy resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    SharedMemory,
    Threads,
    BlockSlots,
    /// The block is infeasible on this device (exceeds a per-block cap).
    Infeasible,
}

/// Computes occupancy of `block` on `device`.
pub fn occupancy(device: &DeviceSpec, block: BlockShape) -> Occupancy {
    if block.threads == 0
        || block.threads > device.max_threads_per_block
        || block.smem_bytes > device.max_smem_per_block
    {
        return Occupancy {
            blocks_per_sm: 0,
            threads_per_sm: 0,
            thread_occupancy: 0.0,
            limiter: Limiter::Infeasible,
        };
    }
    let by_smem = device.smem_per_sm.checked_div(block.smem_bytes).unwrap_or(u32::MAX);
    let by_threads = device.max_threads_per_sm / block.threads;
    let by_slots = device.max_blocks_per_sm;
    let blocks = by_smem.min(by_threads).min(by_slots);
    let limiter = if blocks == 0 {
        Limiter::Infeasible
    } else if blocks == by_smem && by_smem <= by_threads && by_smem <= by_slots {
        Limiter::SharedMemory
    } else if blocks == by_threads && by_threads <= by_slots {
        Limiter::Threads
    } else {
        Limiter::BlockSlots
    };
    let threads_per_sm = blocks * block.threads;
    Occupancy {
        blocks_per_sm: blocks,
        threads_per_sm,
        thread_occupancy: threads_per_sm as f64 / device.max_threads_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smem_limited_block() {
        let d = DeviceSpec::gtx1080ti(); // 96 KiB smem/SM
        let o = occupancy(&d, BlockShape { threads: 128, smem_bytes: 40 * 1024 });
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn thread_limited_block() {
        let d = DeviceSpec::gtx1080ti(); // 2048 threads/SM
        let o = occupancy(&d, BlockShape { threads: 1024, smem_bytes: 1024 });
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::Threads);
        assert!((o.thread_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slot_limited_block() {
        let d = DeviceSpec::gtx1080ti(); // 32 blocks/SM
        let o = occupancy(&d, BlockShape { threads: 32, smem_bytes: 0 });
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, Limiter::BlockSlots);
    }

    #[test]
    fn paper_constraint_guarantees_two_blocks() {
        // Table 1: S_b <= S_sm/2 ensures >= 2 concurrent blocks.
        let d = DeviceSpec::v100();
        let sb = d.smem_per_sm / 2;
        let o = occupancy(&d, BlockShape { threads: 256, smem_bytes: sb });
        assert!(o.blocks_per_sm >= 2);
    }

    #[test]
    fn oversized_block_infeasible() {
        let d = DeviceSpec::gtx1080ti();
        let o = occupancy(&d, BlockShape { threads: 2048, smem_bytes: 0 });
        assert_eq!(o.limiter, Limiter::Infeasible);
        assert_eq!(o.blocks_per_sm, 0);
        let o2 = occupancy(&d, BlockShape { threads: 128, smem_bytes: 80 * 1024 });
        assert_eq!(o2.limiter, Limiter::Infeasible);
    }

    #[test]
    fn zero_smem_block_not_smem_limited() {
        let d = DeviceSpec::titan_x();
        let o = occupancy(&d, BlockShape { threads: 256, smem_bytes: 0 });
        assert_ne!(o.limiter, Limiter::SharedMemory);
        assert!(o.blocks_per_sm >= 8);
    }
}
