//! The speculative work queue: what to tune next, and why.
//!
//! The service fills its stores *before* workloads are requested, so it
//! has to decide which pending workload deserves measurement budget
//! first. The paper's thesis supplies the ranking: a workload whose
//! analytic dataflow I/O (the Eq. 20/22 cost model evaluated at the
//! no-search [`fast_config`] schedule) sits far above its I/O lower
//! bound has the most to gain from search, so its **I/O-bound gap**
//! `Q_model / Q_lower` is its priority. Registered layers always
//! outrank speculative shape-perturbation neighbors; remaining ties
//! break on the workload fingerprint, keeping the drain order — and
//! therefore the budget cutoff — fully deterministic.
//!
//! [`fast_config`]: iolb_autotune::plan::fast_config

use iolb_autotune::plan::fast_config;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::Workload;
use std::collections::BTreeMap;

/// One pending tuning task.
#[derive(Debug, Clone)]
pub struct Job {
    pub shape: ConvShape,
    pub kind: TileKind,
    pub device: DeviceSpec,
    /// `true` for shape-perturbation neighbors (enqueued on the hunch
    /// that a similar layer will be requested), `false` for layers of a
    /// registered network.
    pub speculative: bool,
}

impl Job {
    /// The record-store identity of this job.
    pub fn workload(&self) -> Workload {
        Workload::new(self.shape, self.kind, self.device.name, self.device.smem_per_sm)
    }

    pub fn fingerprint(&self) -> String {
        self.workload().fingerprint()
    }
}

/// The predicted I/O-bound gap of a workload: analytic dataflow I/O of
/// the no-search schedule over the I/O lower bound at that schedule's
/// stage-buffer size (both in elements). Always `>= 1` for feasible
/// workloads; infeasible ones (no valid fast config) rank last at 1.
pub fn io_gap(shape: &ConvShape, kind: TileKind, device: &DeviceSpec) -> f64 {
    let Some(cfg) = fast_config(shape, kind, device) else {
        return 1.0;
    };
    let s = cfg.sb_elems();
    let (q_model, q_lower) = match kind {
        TileKind::Direct => (
            iolb_dataflow::direct::analytic_io_elems(shape, &cfg),
            iolb_core::direct::io_lower_bound(shape, s),
        ),
        TileKind::Winograd(t) => (
            iolb_dataflow::winograd::analytic_io_elems(shape, t, &cfg),
            iolb_core::winograd::io_lower_bound(shape, t, s),
        ),
    };
    let gap = q_model / q_lower.max(1.0);
    if gap.is_finite() {
        gap.max(1.0)
    } else {
        1.0
    }
}

/// Speculative neighbors of a layer shape: the channel-halved/-doubled
/// variants (the axes along which CNN families actually vary between
/// versions — VGG-16 vs VGG-19, ResNet widths). Spatial extents and
/// kernel geometry stay fixed: those perturbations change the algorithm
/// candidates themselves and transfer poorly.
pub fn shape_perturbations(shape: &ConvShape) -> Vec<ConvShape> {
    let mut out: Vec<ConvShape> = Vec::new();
    let mut push = |candidate: ConvShape| {
        if candidate != *shape && candidate.validate().is_ok() && !out.contains(&candidate) {
            out.push(candidate);
        }
    };
    push(ConvShape { cin: shape.cin * 2, ..*shape });
    if shape.cin.is_multiple_of(2) {
        push(ConvShape { cin: shape.cin / 2, ..*shape });
    }
    push(ConvShape { cout: shape.cout * 2, ..*shape });
    if shape.cout.is_multiple_of(2) {
        push(ConvShape { cout: shape.cout / 2, ..*shape });
    }
    out
}

/// Queue ordering key: registered layers before speculative neighbors,
/// then larger I/O-bound gap first, then fingerprint. The float is
/// compared through its IEEE bit pattern, which is order-preserving for
/// the non-negative finite gaps [`io_gap`] produces.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct JobKey {
    speculative: bool,
    gap_descending: std::cmp::Reverse<u64>,
    fingerprint: String,
}

/// What [`WorkQueue::push`] did with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The workload was new: the queue grew.
    Added,
    /// The workload was already pending as a *speculative* neighbor and
    /// the incoming job is a registered layer: the pending entry was
    /// promoted to the registered tier (the queue did not grow).
    Promoted,
    /// The workload was already pending at an equal-or-better tier.
    AlreadyPending,
}

/// Deterministic priority queue of pending jobs, deduplicated by
/// workload fingerprint.
#[derive(Debug, Default)]
pub struct WorkQueue {
    jobs: BTreeMap<JobKey, Job>,
    by_fingerprint: BTreeMap<String, JobKey>,
}

impl WorkQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn contains(&self, fingerprint: &str) -> bool {
        self.by_fingerprint.contains_key(fingerprint)
    }

    /// Every pending workload fingerprint with its tier (`true` =
    /// speculative), in fingerprint order. Registration snapshots this
    /// to avoid recomputing priorities for already-pending workloads.
    pub fn pending(&self) -> impl Iterator<Item = (&str, bool)> {
        self.by_fingerprint.iter().map(|(fp, key)| (fp.as_str(), key.speculative))
    }

    /// Enqueues a job at the given [`io_gap`] priority (computed by the
    /// caller so it can happen outside any service lock — the gap is a
    /// pure function of the workload). A workload already pending as a
    /// speculative neighbor is *promoted* when re-pushed as a registered
    /// layer — a layer of a registered network must never drain at (or
    /// be budget-dropped from) neighbor priority just because a
    /// perturbation of an earlier layer aliased it.
    pub fn push(&mut self, job: Job, gap: f64) -> PushOutcome {
        let fingerprint = job.fingerprint();
        if let Some(existing) = self.by_fingerprint.get(&fingerprint) {
            if !existing.speculative || job.speculative {
                return PushOutcome::AlreadyPending;
            }
            // Same fingerprint = same workload = same gap: keep the key's
            // gap, lift the tier.
            let old_key = existing.clone();
            let promoted = self.jobs.remove(&old_key).expect("pending job for indexed key");
            let new_key = JobKey { speculative: false, ..old_key };
            self.by_fingerprint.insert(fingerprint, new_key.clone());
            self.jobs.insert(new_key, Job { speculative: false, ..promoted });
            return PushOutcome::Promoted;
        }
        let key = JobKey {
            speculative: job.speculative,
            gap_descending: std::cmp::Reverse(gap.to_bits()),
            fingerprint: fingerprint.clone(),
        };
        self.by_fingerprint.insert(fingerprint, key.clone());
        self.jobs.insert(key, job);
        PushOutcome::Added
    }

    /// Removes and returns the highest-priority job.
    pub fn pop_first(&mut self) -> Option<Job> {
        let (key, job) = self.jobs.pop_first()?;
        self.by_fingerprint.remove(&key.fingerprint);
        Some(job)
    }

    /// Cancels a pending job by workload fingerprint (the "speculative
    /// duplicate" path: someone is about to tune this inline). Returns
    /// whether a job was actually cancelled.
    pub fn remove(&mut self, fingerprint: &str) -> bool {
        match self.by_fingerprint.remove(fingerprint) {
            Some(key) => self.jobs.remove(&key).is_some(),
            None => false,
        }
    }

    /// Drops every pending job (budget exhaustion). Returns how many.
    pub fn clear(&mut self) -> usize {
        let n = self.jobs.len();
        self.jobs.clear();
        self.by_fingerprint.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cin: usize, speculative: bool) -> Job {
        Job {
            shape: ConvShape::square(cin, 28, 32, 3, 1, 1),
            kind: TileKind::Direct,
            device: DeviceSpec::v100(),
            speculative,
        }
    }

    fn push(q: &mut WorkQueue, j: Job) -> PushOutcome {
        let gap = io_gap(&j.shape, j.kind, &j.device);
        q.push(j, gap)
    }

    #[test]
    fn io_gap_is_at_least_one_and_feasible_shapes_exceed_it() {
        let d = DeviceSpec::v100();
        let gap = io_gap(&ConvShape::square(256, 56, 128, 3, 1, 1), TileKind::Direct, &d);
        assert!(gap >= 1.0 && gap.is_finite());
    }

    #[test]
    fn registered_layers_outrank_speculative_neighbors() {
        let mut q = WorkQueue::new();
        assert_eq!(push(&mut q, job(64, true)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(128, false)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(32, true)), PushOutcome::Added);
        let first = q.pop_first().unwrap();
        assert!(!first.speculative, "registered layer must drain first");
        assert!(q.pop_first().unwrap().speculative);
    }

    #[test]
    fn queue_dedupes_by_fingerprint_and_cancels() {
        let mut q = WorkQueue::new();
        assert_eq!(push(&mut q, job(64, false)), PushOutcome::Added);
        assert_eq!(
            push(&mut q, job(64, false)),
            PushOutcome::AlreadyPending,
            "duplicate workload must not enqueue"
        );
        assert_eq!(q.len(), 1);
        let fp = job(64, false).fingerprint();
        assert!(q.contains(&fp));
        assert!(q.remove(&fp));
        assert!(!q.remove(&fp));
        assert!(q.is_empty());
    }

    #[test]
    fn registered_push_promotes_a_pending_speculative_duplicate() {
        let mut q = WorkQueue::new();
        // The neighbor of one layer aliases a later registered layer.
        assert_eq!(push(&mut q, job(64, true)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(128, false)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(64, false)), PushOutcome::Promoted);
        // A registered layer never demotes.
        assert_eq!(push(&mut q, job(64, true)), PushOutcome::AlreadyPending);
        assert_eq!(q.len(), 2);
        // Both drain at registered priority now.
        assert!(!q.pop_first().unwrap().speculative);
        assert!(!q.pop_first().unwrap().speculative);
    }

    #[test]
    fn drain_order_is_deterministic() {
        let build = || {
            let mut q = WorkQueue::new();
            for cin in [64, 32, 128, 16] {
                push(&mut q, job(cin, false));
            }
            let mut order = Vec::new();
            while let Some(j) = q.pop_first() {
                order.push(j.fingerprint());
            }
            order
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn perturbations_are_valid_distinct_shapes() {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let neighbors = shape_perturbations(&shape);
        assert_eq!(neighbors.len(), 4);
        for n in &neighbors {
            assert!(n.validate().is_ok());
            assert_ne!(*n, shape);
        }
        // Odd channel counts halve away.
        let odd = ConvShape::square(3, 28, 32, 3, 1, 1);
        assert!(shape_perturbations(&odd).iter().all(|n| n.cin != 1 || n.cout != 32));
    }
}
