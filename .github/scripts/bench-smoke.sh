#!/usr/bin/env bash
# Replay-benchmark smoke: run `tune-bench replay` on a tiny model-zoo
# mix (embedded AND daemon modes inside one run), then validate the
# emitted BENCH_replay.json with `tune-cache check-bench` — schema,
# value ranges, and the bit-identical embedded/daemon total cost. The
# caller's RAYON_NUM_THREADS is honored, so CI exercises both the
# pooled and the single-thread paths with the same script.
set -euo pipefail

TB=target/release/tune-bench
TC=target/release/tune-cache
OUT=$(mktemp /tmp/iolb-bench-replay.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

"$TB" replay --networks alexnet --clients 2 --repeat 2 --budget 4 -o "$OUT"

# The bench file must pass the schema/invariant gate.
"$TC" check-bench "$OUT"

# And a malformed file must fail it (the gate itself is load-bearing).
if echo '{"schema":"wrong","v":1}' | "$TC" check-bench /dev/stdin 2>/dev/null; then
  echo "check-bench accepted a malformed bench file"
  exit 1
fi

echo "bench smoke OK"
