//! Offline stand-in for the `rayon` crate: genuinely parallel slice
//! iterators, [`join`], and [`scope`] built on `std::thread::scope`.
//!
//! The build environment has no network access, so the real crates.io
//! `rayon` cannot be vendored. This shim keeps call sites
//! source-compatible for the subset the workspace uses and preserves the
//! property the auto-tuner depends on: **order-preserving results**.
//! `par_iter().map(f).collect::<Vec<_>>()` returns outputs in input
//! order regardless of thread interleaving, so a caller that reduces the
//! collected vector serially is bit-for-bit deterministic.
//!
//! Work is split into contiguous chunks, one per worker, capped by
//! [`current_num_threads`]. Small inputs (fewer than two elements per
//! potential worker, or below a caller-tunable `min_len`) run inline on
//! the calling thread — thread spawn costs ~10 µs, so fine-grained work
//! must not fan out.

use std::num::NonZeroUsize;

/// Number of worker threads parallel operations may use (mirrors
/// `rayon::current_num_threads`).
///
/// Honors `RAYON_NUM_THREADS` like the real crate's global pool; the
/// variable is re-read on every call (there is no persistent pool), so
/// tests can force serial execution for equivalence checks.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results
/// (mirrors `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Structured task scope (mirrors `rayon::scope`).
///
/// Spawned tasks run on fresh scoped threads and are joined before
/// `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Task spawner handed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// How many elements each worker should get at minimum before a parallel
/// primitive bothers spawning threads.
const DEFAULT_MIN_LEN: usize = 2;

#[inline]
fn worker_count(len: usize, min_len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let by_grain = len / min_len.max(1);
    current_num_threads().min(by_grain).max(1)
}

/// Order-preserving parallel map over a slice.
fn par_map_slice<'a, T, R, F>(slice: &'a [T], min_len: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = worker_count(slice.len(), min_len);
    if workers <= 1 {
        return slice.iter().map(f).collect();
    }
    let chunk = slice.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(slice.len());
    out.resize_with(slice.len(), || None);
    std::thread::scope(|s| {
        for (input, output) in slice.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (slot, item) in output.iter_mut().zip(input) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

/// Parallel for-each over disjoint mutable chunks.
fn par_for_each_chunks_mut<T, F>(slice: &mut [T], chunk: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let pieces = slice.len().div_ceil(chunk).max(1);
    let workers = worker_count(pieces, 1);
    if workers <= 1 || pieces <= 1 {
        for (i, c) in slice.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    // Hand each worker a contiguous run of whole chunks so at most
    // `workers` threads spawn no matter how fine the chunking is.
    let per_worker = pieces.div_ceil(workers);
    std::thread::scope(|s| {
        for (g, group) in slice.chunks_mut(per_worker * chunk).enumerate() {
            s.spawn(move || {
                for (i, c) in group.chunks_mut(chunk).enumerate() {
                    f(g * per_worker + i, c);
                }
            });
        }
    });
}

/// `.par_iter()` on slices (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self, min_len: DEFAULT_MIN_LEN }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self, min_len: DEFAULT_MIN_LEN }
    }
}

/// `.par_iter_mut()` / `.par_chunks_mut()` on slices.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
        ParChunksMut { slice: self, chunk }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
    fn par_chunks_mut(&'a mut self, chunk: usize) -> ParChunksMut<'a, T> {
        ParChunksMut { slice: self, chunk }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Lower bound on per-worker elements before threads spawn (mirrors
    /// `IndexedParallelIterator::with_min_len`).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { slice: self.slice, min_len: self.min_len, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_slice(self.slice, self.min_len, &|t| f(t));
    }
}

/// Mapped parallel iterator: terminal ops preserve input order.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects mapped values **in input order**.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_slice(self.slice, self.min_len, &self.f))
    }
}

/// Mutable parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        par_for_each_chunks_mut(
            self.slice,
            self.slice.len().div_ceil(current_num_threads().max(1)).max(1),
            &|_, chunk| {
                for item in chunk {
                    f(item);
                }
            },
        );
    }

    /// Pairs each element with its index, like rayon's
    /// `par_iter_mut().enumerate()`.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }
}

pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let chunk = self.slice.len().div_ceil(current_num_threads().max(1)).max(1);
        par_for_each_chunks_mut(self.slice, chunk, &|ci, items| {
            for (off, item) in items.iter_mut().enumerate() {
                f((ci * chunk + off, item));
            }
        });
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        par_for_each_chunks_mut(self.slice, self.chunk, &|_, c| f(c));
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { slice: self.slice, chunk: self.chunk }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        par_for_each_chunks_mut(self.slice, self.chunk, &|i, c| f((i, c)));
    }
}

pub mod prelude {
    //! One-stop imports (mirrors `rayon::prelude`).
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub mod iter {
    //! Namespace parity with the real crate.
    pub use super::{ParChunksMut, ParIter, ParIterMut, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_matches_serial_on_tiny_inputs() {
        for n in 0..5usize {
            let input: Vec<usize> = (0..n).collect();
            let out: Vec<usize> = input.par_iter().map(|&x| x + 1).collect();
            assert_eq!(out, (1..=n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![1i64; 1000];
        v.par_iter_mut().for_each(|x| *x += 41);
        assert!(v.iter().all(|&x| x == 42));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut v = vec![0usize; 517];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, (0..517).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_partitions_exactly() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn scope_joins_spawned_tasks() {
        let mut left = 0u64;
        let mut right = 0u64;
        super::scope(|s| {
            s.spawn(|_| left = 1);
            s.spawn(|_| right = 2);
        });
        assert_eq!((left, right), (1, 2));
    }

    #[test]
    fn parallel_map_is_deterministic_across_runs() {
        let input: Vec<f64> = (0..4096).map(|i| i as f64 * 0.37).collect();
        let run = || -> f64 {
            let parts: Vec<f64> = input.par_iter().map(|&x| x.sin()).collect();
            parts.iter().sum()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
