//! The auto-tuning loop (paper §6.3, Fig. 8).
//!
//! Each iteration: (1) *Model Training* — refit the cost model on the
//! measurement history; (2) *Configuration Searching* — the explorer
//! proposes a batch of promising configurations; (3) *Dataset Updating* —
//! the batch is measured (on the simulator) and appended. Tuning stops
//! after a fixed budget or when the best measured time has not improved
//! for `patience` consecutive measurements, mirroring the paper's
//! "until the measurement runtime ... does not decrease for hundreds of
//! iterations".
//!
//! ## Parallelism and determinism
//!
//! The measurement step is the tuning loop's hot path (auto-tuners live
//! or die by measurement throughput), so each proposal batch is measured
//! on rayon workers. Tuning stays **bit-for-bit deterministic given the
//! seed**: the RNG is only consumed by the (serial) search step,
//! `Measurer::measure_ms` is a pure function of the configuration, and
//! the measured batch is folded into the history *serially in proposal
//! order*, so best/patience/curve bookkeeping is independent of how the
//! parallel measurements interleave. The same argument covers the
//! parallel featurization of the model-training rows: a pure per-row map
//! collected in row order.
//!
//! ## The record store
//!
//! [`tune_with_store`] is the loop production services run: identical to
//! [`tune`] except that an [`iolb_records::RecordStore`] sits between
//! the searcher and the simulator. Known configurations replay their
//! stored cost instead of re-measuring (the store is a *measurement
//! cache*; the simulator is deterministic, so a replayed cost equals a
//! re-measured one bit for bit), the best stored configurations seed the
//! searcher's population (*warm start* — exact-workload records first,
//! falling back to the nearest compatible workload by feature distance,
//! *cross-layer transfer*), and every fresh measurement is written back,
//! so measurement cost amortizes across runs, layers and networks.

use crate::cost_model::CostModel;
use crate::features::featurize;
use crate::measure::Measurer;
use crate::search::{History, Searcher};
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_records::{RecordStore, TuningRecord, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Tuning budget and convergence knobs.
#[derive(Debug, Clone, Copy)]
pub struct TuneParams {
    /// Maximum number of measurements.
    pub max_measurements: usize,
    /// Proposals measured per iteration.
    pub batch: usize,
    /// Stop when this many consecutive measurements fail to improve the
    /// best.
    pub patience: usize,
    /// RNG seed (tuning is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for TuneParams {
    fn default() -> Self {
        Self { max_measurements: 256, batch: 8, patience: 64, seed: 0xA7E }
    }
}

/// One point of the convergence curve (Fig. 11's series).
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Measurement index (1-based).
    pub measurement: usize,
    /// Best time found so far, ms.
    pub best_ms: f64,
    /// Best throughput so far, GFLOP/s.
    pub best_gflops: f64,
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found.
    pub best: ScheduleConfig,
    /// Its measured time, ms.
    pub best_ms: f64,
    /// Its throughput, GFLOP/s.
    pub best_gflops: f64,
    /// Total measurement attempts spent (budget consumed, including build
    /// failures).
    pub measurements: usize,
    /// Attempt index at which the best configuration was found — Table 2's
    /// "Iterations" column (trials until the reported solution).
    pub to_best: usize,
    /// Best-so-far curve, one point per measurement.
    pub curve: Vec<CurvePoint>,
    /// Name of the search strategy used.
    pub searcher: &'static str,
}

/// Running bookkeeping of one tuning loop: history, best-so-far,
/// patience and the convergence curve. Folding is serial and happens in
/// proposal order, which is what keeps parallel measurement
/// deterministic.
struct TuneState {
    history: History,
    curve: Vec<CurvePoint>,
    best: Option<(ScheduleConfig, f64)>,
    stall: usize,
    // Failed builds (footprint overflows, unlaunchable blocks) consume
    // budget exactly like TVM's compile failures do.
    attempts: usize,
    to_best: usize,
}

impl TuneState {
    fn new() -> Self {
        Self {
            history: History::new(),
            curve: Vec::new(),
            best: None,
            stall: 0,
            attempts: 0,
            to_best: 0,
        }
    }

    /// Whether the loop should keep going.
    fn live(&self, params: &TuneParams) -> bool {
        self.attempts < params.max_measurements && self.stall < params.patience
    }

    /// (1) Model training on the accumulated history.
    fn train(&self, space: &ConfigSpace, model: &mut dyn CostModel) {
        if self.history.is_empty() {
            return;
        }
        let rows: Vec<Vec<f64>> = self
            .history
            .entries()
            .par_iter()
            .with_min_len(crate::gbt::PAR_MIN_ROWS)
            .map(|(c, _)| featurize(&space.shape, space.kind, c))
            .collect();
        let costs: Vec<f64> = self.history.entries().iter().map(|(_, t)| *t).collect();
        model.train(&rows, &costs);
    }

    /// (3) Dataset updating, one configuration at a time, in proposal
    /// order.
    fn fold(&mut self, cfg: ScheduleConfig, measurement: Option<f64>, measurer: &Measurer) {
        self.attempts += 1;
        let Some(ms) = measurement else {
            // Build failure: budget spent, nothing learned.
            self.stall += 1;
            return;
        };
        self.history.push(cfg, ms);
        let improved = self.best.as_ref().is_none_or(|&(_, b)| ms < b);
        if improved {
            self.best = Some((cfg, ms));
            self.to_best = self.attempts;
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        let (_, best_ms) = self.best.unwrap();
        self.curve.push(CurvePoint {
            measurement: self.attempts,
            best_ms,
            best_gflops: measurer.gflops(best_ms),
        });
    }

    fn into_result(self, measurer: &Measurer, searcher: &'static str) -> Option<TuneResult> {
        self.best.map(|(cfg, ms)| TuneResult {
            best: cfg,
            best_ms: ms,
            best_gflops: measurer.gflops(ms),
            measurements: self.attempts,
            to_best: self.to_best,
            curve: self.curve,
            searcher,
        })
    }
}

/// Runs the full tuning loop.
///
/// Returns `None` only if the space yields no measurable configuration at
/// all (practically: an infeasible shape/device pairing).
pub fn tune(
    space: &ConfigSpace,
    measurer: &Measurer,
    model: &mut dyn CostModel,
    searcher: &mut dyn Searcher,
    params: TuneParams,
) -> Option<TuneResult> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut state = TuneState::new();

    while state.live(&params) {
        // (1) Model training.
        state.train(space, model);
        // (2) Configuration searching.
        let mut batch = searcher.propose(space, model, &state.history, params.batch, &mut rng);
        if batch.is_empty() {
            break;
        }
        // (3) Dataset updating: measure the whole batch on rayon workers
        // (truncated to the remaining budget, which is exactly the set the
        // serial loop would have reached), then fold serially in proposal
        // order so the bookkeeping is schedule-independent.
        batch.truncate(params.max_measurements - state.attempts);
        let measured = measurer.measure_batch(&batch);
        for (cfg, measurement) in batch.into_iter().zip(measured) {
            state.fold(cfg, measurement, measurer);
        }
    }

    state.into_result(measurer, searcher.name())
}

/// The [`Workload`] identity of a tuning problem — the record store's
/// primary key for everything this `(space, measurer)` pair measures.
pub fn workload_for(space: &ConfigSpace, measurer: &Measurer) -> Workload {
    Workload::new(space.shape, space.kind, measurer.device.name, measurer.device.smem_per_sm)
        .with_epilogue(measurer.epilogue)
}

/// Outcome of a store-backed tuning run: the ordinary [`TuneResult`]
/// plus how the store changed the economics of the run.
#[derive(Debug, Clone)]
pub struct StoreTuneResult {
    /// The tuning outcome. `measurements` counts budget spent, i.e.
    /// cache replays *and* fresh measurements — identical semantics to
    /// [`tune`], so curves stay comparable.
    pub result: TuneResult,
    /// Attempts answered by the store without touching the simulator.
    pub cache_hits: usize,
    /// Attempts that actually invoked the simulator (including build
    /// failures, which are never cached).
    pub fresh_measurements: usize,
    /// Configurations used to warm-start the searcher.
    pub warm_seeded: usize,
    /// Whether the warm start came from a *different* workload
    /// (cross-layer transfer) rather than an exact fingerprint match.
    pub transferred: bool,
}

/// Measures a batch through the store: exact hits replay their stored
/// cost, misses go to the simulator (in parallel, in order). Returns the
/// per-config `(cost, was_hit)` in proposal order.
fn measure_batch_cached(
    measurer: &Measurer,
    batch: &[ScheduleConfig],
    store: &RecordStore,
    fingerprint: &str,
) -> Vec<(Option<f64>, bool)> {
    // One index probe per batch (the fingerprint is loop-invariant);
    // per-config lookup is then a scan of this workload's records only.
    let records = store.records(fingerprint);
    let cached: Vec<Option<f64>> =
        batch.iter().map(|c| records.iter().find(|r| r.config == *c).map(|r| r.cost_ms)).collect();
    let misses: Vec<ScheduleConfig> =
        batch.iter().zip(&cached).filter(|(_, hit)| hit.is_none()).map(|(c, _)| *c).collect();
    let measured = measurer.measure_batch(&misses);
    let mut fresh = measured.into_iter();
    cached
        .into_iter()
        .map(|hit| match hit {
            Some(ms) => (Some(ms), true),
            None => (fresh.next().expect("one fresh measurement per miss"), false),
        })
        .collect()
}

/// How a store-backed tuning run may use the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Replay cached measurements *and* seed the searcher from the
    /// store's best records (exact workload first, nearest compatible
    /// workload as the transfer fallback). The production default.
    WarmStart,
    /// Replay cached measurements only. The search trajectory is
    /// bit-identical to a storeless run (a replayed cost equals a
    /// re-measured one), so head-to-head tuner comparisons stay honest
    /// while still amortizing simulator time — what the `fig11`/`tab2`
    /// comparison binaries use, where warm-starting one method from a
    /// competitor's records would corrupt the comparison.
    CacheOnly,
}

/// [`tune`], backed by a persistent [`RecordStore`] in
/// [`StoreMode::WarmStart`]: cached measurements replay for free, the
/// searcher warm-starts from the best stored records, and every fresh
/// measurement is written back to the store.
///
/// Determinism carries over: the store's queries and canonical ordering
/// are deterministic, replayed costs are bit-identical to re-measured
/// ones, and the fold stays serial in proposal order. Two runs against
/// equal stores produce identical results *and* identical stores.
pub fn tune_with_store(
    space: &ConfigSpace,
    measurer: &Measurer,
    model: &mut dyn CostModel,
    searcher: &mut dyn Searcher,
    params: TuneParams,
    store: &mut RecordStore,
) -> Option<StoreTuneResult> {
    tune_with_store_mode(space, measurer, model, searcher, params, store, StoreMode::WarmStart)
}

/// [`tune_with_store`] with an explicit [`StoreMode`].
#[allow(clippy::too_many_arguments)] // the tune() signature plus store and mode
pub fn tune_with_store_mode(
    space: &ConfigSpace,
    measurer: &Measurer,
    model: &mut dyn CostModel,
    searcher: &mut dyn Searcher,
    params: TuneParams,
    store: &mut RecordStore,
    mode: StoreMode,
) -> Option<StoreTuneResult> {
    let workload = workload_for(space, measurer);
    let fingerprint = workload.fingerprint();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut state = TuneState::new();
    let mut cache_hits = 0usize;
    let mut fresh_measurements = 0usize;

    // Fold a batch through the cache, tallying hits and writing fresh
    // successes back to the store.
    let mut fold_cached =
        |state: &mut TuneState, store: &mut RecordStore, batch: Vec<ScheduleConfig>| {
            let measured = measure_batch_cached(measurer, &batch, store, &fingerprint);
            for (cfg, (measurement, was_hit)) in batch.into_iter().zip(measured) {
                if was_hit {
                    cache_hits += 1;
                } else {
                    fresh_measurements += 1;
                    if let Some(ms) = measurement {
                        if let Ok(rec) = TuningRecord::new(workload.clone(), cfg, ms, params.seed) {
                            store.insert(rec);
                        }
                    }
                }
                state.fold(cfg, measurement, measurer);
            }
        };

    // Warm start: replay the store's best configurations for this
    // workload (or, transferring, the nearest compatible one) as the
    // zeroth batch, and seed the searcher's population with them. The
    // replay puts their costs into the history, so the cost model is
    // trained before the first proposal round — the "guided first batch"
    // that cold runs pay full price for.
    let (mut warm, transferred) = match mode {
        StoreMode::WarmStart => store.warm_start_configs(&workload, params.batch.max(1)),
        StoreMode::CacheOnly => (Vec::new(), false),
    };
    warm.retain(|c| space.contains(c));
    warm.truncate(params.max_measurements);
    let warm_seeded = warm.len();
    // Transfer only counts if at least one transferred config survived
    // the space filter (a neighbour's tiles need not divide this layer).
    let transferred = transferred && !warm.is_empty();
    searcher.warm_start(&warm);
    if !warm.is_empty() {
        fold_cached(&mut state, store, warm);
        // Replaying the store best-first means every warm config after
        // the first looked like "no improvement"; that is cache priming,
        // not the search stalling, so it must not eat into patience.
        state.stall = 0;
    }

    while state.live(&params) {
        state.train(space, model);
        let mut batch = searcher.propose(space, model, &state.history, params.batch, &mut rng);
        if batch.is_empty() {
            break;
        }
        batch.truncate(params.max_measurements - state.attempts);
        fold_cached(&mut state, store, batch);
    }

    let result = state.into_result(measurer, searcher.name())?;
    Some(StoreTuneResult { result, cache_hits, fresh_measurements, warm_seeded, transferred })
}

/// Outcome of a [`tune_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchTuneOutcome {
    /// Per original request, in order: the tuning outcome of its unique
    /// representative (duplicates share their representative's result,
    /// cloned). `None` for infeasible workloads.
    pub results: Vec<Option<StoreTuneResult>>,
    /// Union of every run's records — what the batch learned.
    pub store: RecordStore,
    /// Hermetic tuning runs actually performed (one per unique workload).
    pub unique_runs: usize,
    /// Requests that rode along on another request's run for free.
    pub deduped: usize,
}

/// Tunes a whole batch of related workloads — "one network on one
/// device" — sharing the canonical tuner setup across batch members.
///
/// The batch is first deduplicated by workload fingerprint
/// ([`crate::plan::dedup_requests`]): repeated layer shapes become one
/// tuning run whose result fans out to every occurrence. Each unique
/// workload then runs the canonical [`crate::plan::tuner_setup`] against
/// a **fresh private store** — exactly the hermetic per-workload run the
/// tuning service's background workers perform, so a batch-tuned config
/// is bit-identical to an eager [`tune_with_store`] run of the same
/// `(workload, budget, seed)`, and the unique runs can safely fan out
/// across rayon workers (results are collected in request order, so the
/// outcome is independent of scheduling).
///
/// Hermeticity is deliberate: sharing measurements *across* members
/// would make each result depend on batch composition and completion
/// order, breaking replay. What the batch shares is the planning —
/// dedup, setup construction — which Li et al.'s analytical DSE shows is
/// the cheap part; the measurements it *avoids* are the duplicated ones.
pub fn tune_batch(
    requests: &[crate::plan::BatchRequest],
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
) -> BatchTuneOutcome {
    let (unique, representative) = crate::plan::dedup_requests(requests, device);
    let runs: Vec<Option<(StoreTuneResult, RecordStore)>> = unique
        .par_iter()
        .map(|req| {
            let mut private = RecordStore::new();
            let mut s = crate::plan::tuner_setup_fused(
                &req.shape,
                req.kind,
                req.epilogue,
                device,
                budget,
                seed,
            );
            let out = tune_with_store(
                &s.space,
                &s.measurer,
                &mut s.model,
                &mut s.searcher,
                s.params,
                &mut private,
            )?;
            Some((out, private))
        })
        .collect();
    let mut store = RecordStore::new();
    let mut results_by_unique: Vec<Option<StoreTuneResult>> = Vec::with_capacity(runs.len());
    for run in runs {
        match run {
            Some((out, private)) => {
                store.merge(private);
                results_by_unique.push(Some(out));
            }
            None => results_by_unique.push(None),
        }
    }
    let results =
        representative.iter().map(|&at| results_by_unique[at].clone()).collect::<Vec<_>>();
    BatchTuneOutcome {
        results,
        store,
        unique_runs: unique.len(),
        deduped: requests.len() - unique.len(),
    }
}

/// Transfer tuning: tunes a sequence of related problems (e.g. the conv
/// layers of one network) while *sharing one cost model* across them.
///
/// Before each layer's run the model is warmed on the accumulated
/// cross-layer history (best configs + random probes of earlier layers);
/// the features are shape-relative (condition deviation, occupancy proxy,
/// modelled I/O), so what the model learns on one layer transfers to the
/// next. Within a layer, [`tune`] retrains on the layer's own history as
/// usual — the transfer buys a *guided first batch* instead of a blind
/// one, which is where per-layer tuning wastes the most budget. (TVM ships
/// the same idea as its "transfer learning" tuners.)
///
/// Returns one [`TuneResult`] per `(space, measurer)` pair, in order.
pub fn tune_transfer(
    problems: &[(ConfigSpace, Measurer)],
    model: &mut dyn CostModel,
    make_searcher: &mut dyn FnMut() -> Box<dyn Searcher>,
    params: TuneParams,
) -> Vec<Option<TuneResult>> {
    let mut shared_rows: Vec<Vec<f64>> = Vec::new();
    let mut shared_costs: Vec<f64> = Vec::new();
    let mut results = Vec::with_capacity(problems.len());
    for (i, (space, measurer)) in problems.iter().enumerate() {
        // Warm the model with everything measured so far.
        if !shared_rows.is_empty() {
            model.train(&shared_rows, &shared_costs);
        }
        let mut searcher = make_searcher();
        let layer_params = TuneParams { seed: params.seed.wrapping_add(i as u64), ..params };
        let result = tune(space, measurer, model, searcher.as_mut(), layer_params);
        // Fold this layer's strongest signal (its best config) plus a few
        // random probes into the shared history for the next layers.
        if let Some(r) = &result {
            shared_rows.push(crate::features::featurize(&space.shape, space.kind, &r.best));
            shared_costs.push(r.best_ms);
        }
        // Sampling stays serial (it owns the RNG stream); measuring the
        // probes is pure and fans out on rayon.
        let mut rng = StdRng::seed_from_u64(layer_params.seed ^ 0xBEEF);
        let probes: Vec<ScheduleConfig> =
            (0..16).filter_map(|_| space.sample(&mut rng, 128)).collect();
        let probe_times = measurer.measure_batch(&probes);
        for (cfg, ms) in probes.iter().zip(probe_times) {
            if let Some(ms) = ms {
                shared_rows.push(crate::features::featurize(&space.shape, space.kind, cfg));
                shared_costs.push(ms);
            }
        }
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::{GbtCostModel, NoModel};
    use crate::search::random::RandomSearch;
    use crate::search::walk::ParallelRandomWalk;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use iolb_gpusim::DeviceSpec;

    fn setup(pruned: bool) -> (ConfigSpace, Measurer) {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let device = DeviceSpec::v100();
        let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, pruned);
        let measurer = Measurer::new(device, shape, TileKind::Direct);
        (space, measurer)
    }

    #[test]
    fn tuning_finds_a_config_and_curve_is_monotone() {
        let (space, measurer) = setup(true);
        let mut model = GbtCostModel::default();
        let mut searcher = ParallelRandomWalk::new();
        let params = TuneParams { max_measurements: 48, batch: 6, patience: 48, seed: 1 };
        let result = tune(&space, &measurer, &mut model, &mut searcher, params).unwrap();
        assert!(result.best_ms > 0.0);
        assert!(result.measurements <= 48);
        // Best-so-far must be non-increasing in time, non-decreasing in
        // GFLOP/s.
        for w in result.curve.windows(2) {
            assert!(w[1].best_ms <= w[0].best_ms);
            assert!(w[1].best_gflops >= w[0].best_gflops - 1e-9);
        }
    }

    #[test]
    fn tuning_is_deterministic_given_seed() {
        let (space, measurer) = setup(true);
        let run = || {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(
                &space,
                &measurer,
                &mut model,
                &mut searcher,
                TuneParams { max_measurements: 24, batch: 4, patience: 24, seed: 9 },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_ms, b.best_ms);
    }

    #[test]
    fn best_config_beats_random_average() {
        let (space, measurer) = setup(true);
        let mut model = GbtCostModel::default();
        let mut searcher = ParallelRandomWalk::new();
        let result = tune(
            &space,
            &measurer,
            &mut model,
            &mut searcher,
            TuneParams { max_measurements: 64, batch: 8, patience: 64, seed: 2 },
        )
        .unwrap();
        // Average cost of pure random samples.
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let mut n = 0;
        for _ in 0..32 {
            if let Some(cfg) = space.sample(&mut rng, 256) {
                if let Some(ms) = measurer.measure_ms(&cfg) {
                    total += ms;
                    n += 1;
                }
            }
        }
        let avg = total / n as f64;
        assert!(result.best_ms < avg, "tuned {} not below random average {avg}", result.best_ms);
    }

    #[test]
    fn patience_stops_early() {
        let (space, measurer) = setup(true);
        let mut model = NoModel;
        let mut searcher = RandomSearch;
        let result = tune(
            &space,
            &measurer,
            &mut model,
            &mut searcher,
            TuneParams { max_measurements: 10_000, batch: 8, patience: 12, seed: 4 },
        )
        .unwrap();
        assert!(result.measurements < 10_000, "patience did not trigger: {}", result.measurements);
    }

    #[test]
    fn pruned_space_converges_at_least_as_fast() {
        // The paper's Table 2 claim, in miniature: measurements-to-best on
        // the pruned space do not exceed those on the full space by much;
        // and the pruned best is competitive.
        let (full, measurer) = setup(false);
        let (pruned, _) = setup(true);
        let run = |space: &ConfigSpace| {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(
                space,
                &measurer,
                &mut model,
                &mut searcher,
                TuneParams { max_measurements: 64, batch: 8, patience: 64, seed: 5 },
            )
            .unwrap()
        };
        let rf = run(&full);
        let rp = run(&pruned);
        // The pruned-space optimum is within 25% of the full-space one.
        assert!(
            rp.best_ms <= rf.best_ms * 1.25,
            "pruned best {} vs full best {}",
            rp.best_ms,
            rf.best_ms
        );
    }

    #[test]
    fn store_backed_tuning_matches_plain_tuning_on_empty_store() {
        // With nothing cached, tune_with_store must walk the exact same
        // trajectory as tune (no hits, no warm seeds, same RNG stream).
        let (space, measurer) = setup(true);
        let params = TuneParams { max_measurements: 32, batch: 4, patience: 32, seed: 21 };
        let plain = {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(&space, &measurer, &mut model, &mut searcher, params).unwrap()
        };
        let mut store = iolb_records::RecordStore::new();
        let cached = {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune_with_store(&space, &measurer, &mut model, &mut searcher, params, &mut store)
                .unwrap()
        };
        assert_eq!(cached.cache_hits, 0);
        assert_eq!(cached.warm_seeded, 0);
        assert!(!cached.transferred);
        assert_eq!(cached.fresh_measurements, cached.result.measurements);
        assert_eq!(cached.result.best, plain.best);
        assert_eq!(cached.result.best_ms.to_bits(), plain.best_ms.to_bits());
        assert_eq!(cached.result.measurements, plain.measurements);
        // Every successful fresh measurement was recorded.
        assert_eq!(store.len(), cached.result.curve.len());
    }

    #[test]
    fn second_run_hits_the_cache_and_never_regresses() {
        let (space, measurer) = setup(true);
        // patience == budget so both runs spend the whole budget: the
        // strict fresh-measurement reduction is then exactly the hits.
        let params = TuneParams { max_measurements: 40, batch: 8, patience: 40, seed: 33 };
        let mut store = iolb_records::RecordStore::new();
        let run = |store: &mut iolb_records::RecordStore| {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune_with_store(&space, &measurer, &mut model, &mut searcher, params, store).unwrap()
        };
        let first = run(&mut store);
        let second = run(&mut store);
        assert!(second.warm_seeded > 0, "second run found no warm seeds");
        assert!(second.cache_hits > 0, "second run never hit the cache");
        assert!(
            second.fresh_measurements < first.fresh_measurements,
            "second run re-measured as much as the first ({} vs {})",
            second.fresh_measurements,
            first.fresh_measurements
        );
        assert!(
            second.result.best_ms <= first.result.best_ms,
            "warm-started best {} regressed past cold best {}",
            second.result.best_ms,
            first.result.best_ms
        );
    }

    #[test]
    fn cache_only_mode_replays_without_changing_the_trajectory() {
        // In CacheOnly mode a second run must walk the *identical*
        // trajectory to a storeless run — only cheaper.
        let (space, measurer) = setup(true);
        let params = TuneParams { max_measurements: 32, batch: 8, patience: 32, seed: 13 };
        let plain = {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(&space, &measurer, &mut model, &mut searcher, params).unwrap()
        };
        let mut store = iolb_records::RecordStore::new();
        let run = |store: &mut iolb_records::RecordStore| {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune_with_store_mode(
                &space,
                &measurer,
                &mut model,
                &mut searcher,
                params,
                store,
                StoreMode::CacheOnly,
            )
            .unwrap()
        };
        let first = run(&mut store);
        let second = run(&mut store);
        for cached in [&first, &second] {
            assert_eq!(cached.warm_seeded, 0);
            assert!(!cached.transferred);
            assert_eq!(cached.result.best, plain.best);
            assert_eq!(cached.result.best_ms.to_bits(), plain.best_ms.to_bits());
            assert_eq!(cached.result.measurements, plain.measurements);
            assert_eq!(cached.result.to_best, plain.to_best);
        }
        // ... but the second run replays instead of re-measuring.
        assert_eq!(first.cache_hits, 0);
        assert!(second.cache_hits > 0);
        assert!(second.fresh_measurements < first.fresh_measurements);
    }

    #[test]
    fn transfer_seeds_from_the_nearest_workload() {
        let device = DeviceSpec::v100();
        let near = ConvShape::square(64, 28, 32, 3, 1, 1);
        let target = ConvShape::square(32, 28, 32, 3, 1, 1);
        let params = TuneParams { max_measurements: 24, batch: 6, patience: 24, seed: 5 };
        let mut store = iolb_records::RecordStore::new();
        // Populate the store with the neighbour layer only.
        {
            let space = ConfigSpace::new(near, TileKind::Direct, device.smem_per_sm, true);
            let measurer = Measurer::new(device.clone(), near, TileKind::Direct);
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune_with_store(&space, &measurer, &mut model, &mut searcher, params, &mut store)
                .unwrap();
        }
        let space = ConfigSpace::new(target, TileKind::Direct, device.smem_per_sm, true);
        let measurer = Measurer::new(device, target, TileKind::Direct);
        let mut model = GbtCostModel::default();
        let mut searcher = ParallelRandomWalk::new();
        let out = tune_with_store(&space, &measurer, &mut model, &mut searcher, params, &mut store)
            .unwrap();
        // Same spatial extents: the neighbour's configs that survive the
        // space filter seed the run, flagged as a transfer.
        assert!(out.transferred, "no cross-workload transfer happened");
        assert!(out.warm_seeded > 0);
        assert_eq!(out.cache_hits, 0, "different workload must not hit the cache");
        // The target workload's fresh measurements are now stored too.
        let wl = workload_for(&space, &measurer);
        assert!(!store.top_k(&wl, 1).is_empty());
    }

    #[test]
    fn tune_batch_dedupes_and_matches_eager_runs() {
        use crate::plan::{tuner_setup, BatchRequest};
        let device = DeviceSpec::v100();
        let a = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        let b = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
        // Four requests, two unique workloads: a appears three times.
        let requests: Vec<BatchRequest> =
            [a, a, b, a].iter().map(|&shape| BatchRequest::bare(shape, TileKind::Direct)).collect();
        let out = tune_batch(&requests, &device, 12, 7);
        assert_eq!(out.unique_runs, 2);
        assert_eq!(out.deduped, 2);
        assert_eq!(out.results.len(), 4);
        // Duplicates share their representative's result bit-for-bit.
        let first = out.results[0].as_ref().unwrap();
        for dup in [1, 3] {
            let r = out.results[dup].as_ref().unwrap();
            assert_eq!(r.result.best, first.result.best);
            assert_eq!(r.result.best_ms.to_bits(), first.result.best_ms.to_bits());
        }
        // Each unique run is bit-identical to the eager single-workload
        // run of the same (workload, budget, seed) — hermeticity.
        let mut batch_fresh = 0;
        for (req, result) in [(requests[0], first), (requests[2], out.results[2].as_ref().unwrap())]
        {
            let mut store = RecordStore::new();
            let mut s = tuner_setup(&req.shape, req.kind, &device, 12, 7);
            let eager = tune_with_store(
                &s.space,
                &s.measurer,
                &mut s.model,
                &mut s.searcher,
                s.params,
                &mut store,
            )
            .unwrap();
            assert_eq!(result.result.best, eager.result.best);
            assert_eq!(result.result.best_ms.to_bits(), eager.result.best_ms.to_bits());
            assert_eq!(result.fresh_measurements, eager.fresh_measurements);
            batch_fresh += result.fresh_measurements;
        }
        // The merged store holds exactly the unique runs' records, and
        // the batch spent exactly one run per unique workload: repeats
        // cost zero measurements.
        assert_eq!(out.store.workload_count(), 2);
        let total: usize =
            [0, 2].iter().map(|&i| out.results[i].as_ref().unwrap().fresh_measurements).sum();
        assert_eq!(total, batch_fresh);
    }

    #[test]
    fn tune_batch_reports_infeasible_members_without_sinking_the_batch() {
        use crate::plan::BatchRequest;
        // A device with no usable shared memory makes every run infeasible.
        let ok = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        let device = DeviceSpec::v100();
        let hopeless = DeviceSpec { smem_per_sm: 1, ..device.clone() };
        let requests = [BatchRequest::bare(ok, TileKind::Direct)];
        let out = tune_batch(&requests, &hopeless, 8, 7);
        assert!(out.results[0].is_none());
        assert!(out.store.is_empty());
        let out = tune_batch(&requests, &device, 8, 7);
        assert!(out.results[0].is_some());
    }

    #[test]
    fn transfer_tuning_covers_all_layers() {
        let device = DeviceSpec::v100();
        let shapes = [
            ConvShape::square(64, 28, 32, 3, 1, 1),
            ConvShape::square(32, 28, 64, 3, 1, 1),
            ConvShape::square(64, 14, 64, 3, 1, 1),
        ];
        let problems: Vec<(ConfigSpace, Measurer)> = shapes
            .iter()
            .map(|&s| {
                (
                    ConfigSpace::new(s, TileKind::Direct, device.smem_per_sm, true),
                    Measurer::new(device.clone(), s, TileKind::Direct),
                )
            })
            .collect();
        let mut model = GbtCostModel::default();
        let mut make =
            || -> Box<dyn crate::search::Searcher> { Box::new(ParallelRandomWalk::new()) };
        let results = tune_transfer(
            &problems,
            &mut model,
            &mut make,
            TuneParams { max_measurements: 32, batch: 8, patience: 32, seed: 11 },
        );
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap_or_else(|| panic!("layer {i} untuned"));
            assert!(r.best_ms > 0.0);
        }
        // The shared model ends up trained.
        assert!(model.is_trained());
    }
}
