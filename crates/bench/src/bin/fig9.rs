//! Figure 9 — relative speedup of the I/O-optimal dataflow over the cuDNN
//! stand-in on the 1080Ti, for the direct convolution at strides 1/2/4 and
//! for the Winograd algorithm; `H_ker = W_ker = 3`, `C_in = 256`,
//! `C_out in {128, 256, 512, 1024}`, `H_in = W_in in {14, 56, 112, 196,
//! 224}` — the paper's 16 sub-plots as 4 speedup tables.

use iolb_bench::{banner, cudnn_direct_ms, cudnn_winograd_ms, fmt_speedup, ours_fast_ms};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_gpusim::DeviceSpec;

const HW: [usize; 5] = [14, 56, 112, 196, 224];
const COUT: [usize; 4] = [128, 256, 512, 1024];

fn grid(device: &DeviceSpec, title: &str, run: impl Fn(&ConvShape) -> Option<(f64, f64)>) {
    println!("\n--- {title} ---");
    print!("{:>10}", "Win\\Cout");
    for c in COUT {
        print!("{c:>10}");
    }
    println!();
    let mut total = 0.0;
    let mut count = 0u32;
    for hw in HW {
        print!("{hw:>10}");
        for cout in COUT {
            let shape = ConvShape::square(256, hw, cout, 3, 1, 1).with_batch(1);
            let shape = ConvShape { cout, ..shape };
            match run(&shape) {
                Some((ours, base)) if ours.is_finite() && base.is_finite() => {
                    let s = base / ours;
                    total += s;
                    count += 1;
                    print!("{:>10}", fmt_speedup(s));
                }
                _ => print!("{:>10}", "-"),
            }
        }
        println!();
    }
    if count > 0 {
        println!("  [{}] mean speedup: {}", device.name, fmt_speedup(total / count as f64));
    }
}

fn main() {
    let device = DeviceSpec::gtx1080ti();
    banner(
        "Figure 9: dataflow vs cuDNN stand-in, relative speedup",
        "3x3 kernels, Cin = 256, batch 1, GTX 1080 Ti (simulated)",
    );

    for mu in [1usize, 2, 4] {
        let d = device.clone();
        grid(&device, &format!("Direct convolution, stride mu = {mu}"), move |s| {
            let shape = ConvShape { stride: mu, ..*s };
            let ours = ours_fast_ms(&shape, TileKind::Direct, &d)?;
            Some((ours, cudnn_direct_ms(&shape, &d)))
        });
    }

    let d = device.clone();
    grid(&device, "Winograd algorithm (stride 1)", move |s| {
        // Our planner picks the better of F(2,3)/F(4,3); so does cuDNN.
        let best_ours = [WinogradTile::F2X3, WinogradTile::F4X3]
            .into_iter()
            .filter_map(|t| ours_fast_ms(s, TileKind::Winograd(t), &d))
            .fold(f64::INFINITY, f64::min);
        if !best_ours.is_finite() {
            return None;
        }
        Some((best_ours, cudnn_winograd_ms(s, &d)))
    });

    println!("\nPaper reference: ~3.32x average over the 16 sub-plots; speedups grow");
    println!("with Hin/Win, shrink with stride (paper observations 1 & 3).");
}
