//! Hand-rolled JSONL codec for [`TuningRecord`]s.
//!
//! The build environment is offline, so there is no serde; records are
//! flat JSON objects (string keys; number or string values) written one
//! per line. The writer is **canonical**: fixed field order, floats in
//! Rust's shortest-round-trip `Display` form, integers bare — the same
//! record always serializes to the same bytes, which is what lets two
//! runs produce bit-identical store files.
//!
//! The parser is deliberately small but strict about what it accepts: a
//! single flat object per line, no trailing garbage. Anything else is an
//! `Err` with a reason — the store layer turns that into a
//! skip-and-report instead of a failed load.
//!
//! [`parse_flat_object`], [`Value`] and [`escape`] are public: the
//! tuning service's wire protocol (`iolb_service::wire`) builds its
//! framed messages out of the same flat-object lines, so the two
//! formats share one parser and cannot drift apart.

use crate::record::{algo_tag, parse_algo_tag, TuningRecord, Workload, SCHEMA_VERSION};
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_tensor::layout::Layout;

/// Serializes one record as its canonical JSON line (no trailing `\n`).
///
/// `cost_ms` uses Rust's float `Display`, which prints the shortest
/// decimal that parses back to the identical bits — the codec's
/// round-trip guarantee for floats rests on that.
pub fn encode(rec: &TuningRecord) -> String {
    let s = &rec.workload.shape;
    let c = &rec.config;
    // Fused chains carry an extra "epi" field right after "algo"; the
    // unfused case emits nothing there, keeping pre-fusion lines
    // byte-identical (same schema version, same canonical bytes).
    let epi = if rec.workload.epilogue.is_none() {
        String::new()
    } else {
        format!("\"epi\":\"{}\",", rec.workload.epilogue.tag())
    };
    format!(
        concat!(
            "{{\"v\":{},\"algo\":\"{}\",{}\"batch\":{},\"cin\":{},\"hin\":{},\"win\":{},",
            "\"cout\":{},\"kh\":{},\"kw\":{},\"stride\":{},\"pad\":{},",
            "\"dev\":\"{}\",\"smem\":{},",
            "\"x\":{},\"y\":{},\"z\":{},\"nxt\":{},\"nyt\":{},\"nzt\":{},",
            "\"sb\":{},\"layout\":\"{}\",\"cost_ms\":{},\"seed\":{}}}"
        ),
        SCHEMA_VERSION,
        algo_tag(rec.workload.kind),
        epi,
        s.batch,
        s.cin,
        s.hin,
        s.win,
        s.cout,
        s.kh,
        s.kw,
        s.stride,
        s.pad,
        escape(&rec.workload.device),
        rec.workload.smem_bytes,
        c.x,
        c.y,
        c.z,
        c.nxt,
        c.nyt,
        c.nzt,
        c.sb_bytes,
        c.layout.name(),
        rec.cost_ms,
        rec.seed,
    )
}

/// Parses one line into a record. Fails (with a reason) on malformed
/// JSON, missing fields, bad values, or a schema-version mismatch.
pub fn decode(line: &str) -> Result<TuningRecord, String> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| -> Result<&Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let version = get("v")?.as_u64("v")?;
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "unsupported schema version {version} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let kind = parse_algo_tag(get("algo")?.as_str("algo")?)?;
    let dim = |key: &str| -> Result<usize, String> { get(key)?.as_usize(key) };
    let shape = ConvShape {
        batch: dim("batch")?,
        cin: dim("cin")?,
        hin: dim("hin")?,
        win: dim("win")?,
        cout: dim("cout")?,
        kh: dim("kh")?,
        kw: dim("kw")?,
        stride: dim("stride")?,
        pad: dim("pad")?,
    };
    shape.validate().map_err(|e| format!("invalid shape: {e}"))?;
    // "epi" is optional: absent means an unfused convolution, which is
    // exactly what every pre-fusion line in an existing store says.
    let epilogue = match fields.iter().find(|(k, _)| k == "epi") {
        Some((_, v)) => iolb_core::epilogue::Epilogue::parse_tag(v.as_str("epi")?)?,
        None => iolb_core::epilogue::Epilogue::None,
    };
    let workload = Workload {
        shape,
        kind,
        device: get("dev")?.as_str("dev")?.to_string(),
        smem_bytes: u32::try_from(get("smem")?.as_u64("smem")?)
            .map_err(|_| "smem out of range".to_string())?,
        epilogue,
    };
    let layout: Layout = get("layout")?.as_str("layout")?.parse()?;
    let config = ScheduleConfig {
        x: dim("x")?,
        y: dim("y")?,
        z: dim("z")?,
        nxt: dim("nxt")?,
        nyt: dim("nyt")?,
        nzt: dim("nzt")?,
        sb_bytes: u32::try_from(get("sb")?.as_u64("sb")?)
            .map_err(|_| "sb out of range".to_string())?,
        layout,
    };
    let cost_ms = get("cost_ms")?.as_f64("cost_ms")?;
    let seed = get("seed")?.as_u64("seed")?;
    TuningRecord::new(workload, config, cost_ms, seed)
}

/// A parsed flat-JSON value. Numbers keep their raw token so integer
/// fields can be parsed exactly (a `u64` seed above 2^53 would lose bits
/// through an `f64` detour).
///
/// Public because the wire codec in `iolb-service` reuses this crate's
/// flat-object conventions for its framed messages — one JSON dialect
/// across the store files and the socket protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Num(String),
    Str(String),
}

impl Value {
    pub fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Num(_) => Err(format!("field {key:?} must be a string")),
        }
    }

    pub fn as_f64(&self, key: &str) -> Result<f64, String> {
        match self {
            Value::Num(raw) => {
                raw.parse::<f64>().map_err(|_| format!("field {key:?}: bad number {raw:?}"))
            }
            Value::Str(_) => Err(format!("field {key:?} must be a number")),
        }
    }

    pub fn as_u64(&self, key: &str) -> Result<u64, String> {
        match self {
            Value::Num(raw) => {
                raw.parse::<u64>().map_err(|_| format!("field {key:?}: bad integer {raw:?}"))
            }
            Value::Str(_) => Err(format!("field {key:?} must be a number")),
        }
    }

    pub fn as_usize(&self, key: &str) -> Result<usize, String> {
        usize::try_from(self.as_u64(key)?).map_err(|_| format!("field {key:?} out of range"))
    }
}

/// Parses a single flat JSON object (`{"k": v, ...}`; values are numbers
/// or strings). Duplicate keys are rejected: they signal corruption.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields: Vec<(String, Value)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage after object at byte {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                // Validate the token is actually numeric (the charset
                // above admits junk like "1e+e").
                raw.parse::<f64>().map_err(|_| format!("bad number token {raw:?}"))?;
                Ok(Value::Num(raw.to_string()))
            }
            _ => Err(format!("expected a string or number value at byte {}", self.pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::WinogradTile;

    fn record(cost: f64) -> TuningRecord {
        TuningRecord::new(
            Workload::new(
                ConvShape::square(64, 28, 32, 3, 1, 1),
                TileKind::Direct,
                "Tesla V100",
                96 * 1024,
            ),
            ScheduleConfig {
                x: 7,
                y: 7,
                z: 8,
                nxt: 7,
                nyt: 7,
                nzt: 2,
                sb_bytes: 16 * 1024,
                layout: Layout::Chw,
            },
            cost,
            0xA7E,
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_exact_including_floats() {
        // Shortest-round-trip Display must restore every bit of the cost.
        for cost in [
            0.1,
            1.0 / 3.0,
            1e-9,
            123456.789012345,
            f64::MIN_POSITIVE,
            2.2250738585072014e-308,
            9007199254740993.0, // 2^53 + 1 (rounds; still must round-trip its own bits)
        ] {
            let rec = record(cost);
            let line = encode(&rec);
            let back = decode(&line).unwrap();
            assert_eq!(back.cost_ms.to_bits(), rec.cost_ms.to_bits(), "cost {cost} lost bits");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&record(0.5)), encode(&record(0.5)));
    }

    #[test]
    fn seeds_above_2_pow_53_survive() {
        let mut rec = record(1.0);
        rec.seed = u64::MAX - 1;
        let back = decode(&encode(&rec)).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn winograd_and_all_layouts_round_trip() {
        for layout in Layout::ALL {
            let mut rec = record(2.5);
            rec.config.layout = layout;
            rec.workload.kind = TileKind::Winograd(WinogradTile::F4X3);
            // Winograd spaces require e-multiple tiles; the codec doesn't
            // validate that (the space does), it just round-trips.
            let back = decode(&encode(&rec)).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn fused_records_round_trip_and_unfused_lines_are_unchanged() {
        use iolb_core::epilogue::Epilogue;
        let bare = encode(&record(1.0));
        assert!(!bare.contains("\"epi\""), "unfused lines must not grow an epi field");
        for epi in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
            let mut rec = record(1.0);
            rec.workload.epilogue = epi;
            let line = encode(&rec);
            assert!(line.contains(&format!("\"epi\":\"{}\"", epi.tag())));
            let back = decode(&line).unwrap();
            assert_eq!(back, rec);
        }
        // A bad epilogue tag is rejected, not silently dropped.
        let line = encode(&record(1.0))
            .replace("\"algo\":\"direct\",", "\"algo\":\"direct\",\"epi\":\"+swish\",");
        assert!(decode(&line).is_err());
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let line = encode(&record(1.0)).replace("\"v\":1,", "\"v\":2,");
        let err = decode(&line).unwrap_err();
        assert!(err.contains("version"), "unhelpful error: {err}");
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        for (line, why) in [
            ("", "empty"),
            ("not json at all", "no object"),
            ("{\"v\":1", "truncated"),
            ("{\"v\":1}", "missing fields"),
            ("[1,2,3]", "not an object"),
            ("{\"v\":1,\"v\":1}", "duplicate key"),
            ("{\"v\":\"one\"}", "wrong type"),
        ] {
            assert!(decode(line).is_err(), "{why}: accepted {line:?}");
        }
        // Trailing garbage after a valid object.
        let line = format!("{} trailing", encode(&record(1.0)));
        assert!(decode(&line).is_err());
        // A NaN cost can't even be written, but a hand-edited one must be
        // rejected on read.
        let line =
            encode(&record(1.0)).replace(format!("\"cost_ms\":{}", 1.0).as_str(), "\"cost_ms\":-5");
        assert!(decode(&line).is_err(), "negative cost accepted");
    }

    #[test]
    fn device_names_with_specials_round_trip() {
        let mut rec = record(1.0);
        rec.workload.device = "dev \"quoted\" \\ slash\tname".to_string();
        let back = decode(&encode(&rec)).unwrap();
        assert_eq!(back.workload.device, rec.workload.device);
    }
}
