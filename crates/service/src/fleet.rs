//! The client-side fleet router: consistent-hash sharding of tuning
//! requests across N daemons, with failover.
//!
//! One daemon (PR 5) serves one machine. The fleet is N daemons — each
//! owning its own shard directory, reachable over a Unix socket or TCP
//! ([`PeerAddr`]) — and a [`FleetRouter`] on the client that decides
//! *which* daemon owns *which* workload:
//!
//! * **Consistent hashing on workload fingerprints.** Every peer
//!   contributes [`VNODES_PER_PEER`] virtual nodes to a hash ring
//!   (FNV-1a of `"{peer label}#{replica}"` — the same dependency-free
//!   hash the shard file names use); a request routes to the first
//!   virtual node clockwise from the FNV-1a hash of its workload
//!   fingerprint. The ring is a pure function of the peer *labels*, so
//!   the same fleet spec yields the same assignment in every process,
//!   every run — and reordering the spec changes nothing.
//! * **Failover re-routes only the dead peer's range.** When a peer
//!   stops answering (connect failure, transport error, protocol
//!   garbage), the router marks it dead and walks clockwise past its
//!   virtual nodes: exactly the keys that peer owned redistribute to the
//!   survivors; every other key keeps its assignment. Requests already
//!   submitted to the dead peer are re-submitted to survivors — and
//!   because per-workload tuning is *hermetic* (a pure function of
//!   `(workload, budget, seed)`), the re-tuned results are bit-identical
//!   to what the dead peer would have served. `tests/fleet.rs` pins
//!   both properties.
//! * **Duplicates never split.** Routing is by fingerprint, so every
//!   duplicate of a workload lands on the same peer and the daemon-side
//!   session dedup (one tuning run, fanned out) keeps working across
//!   the fleet.
//!
//! [`FleetRouter`] implements [`Backend`], so
//! `iolb_cnn::time_network_with_backend` and `tune-net --fleet` drive a
//! whole fleet through the same code path as one embedded service or
//! one daemon. Replication between the daemons themselves (anti-entropy
//! `Pull`/absorb) is server-side: see [`crate::daemon`] and
//! `docs/OPERATIONS.md`.

use crate::daemon::{SocketBackend, TcpBackend};
use crate::service::{ServeResult, ServiceSnapshot};
use crate::session::{
    Backend, BackendError, BackendSession, StatsReport, SyncOutcome, TuneRequest,
};
use crate::shard::fnv1a;
use crate::telemetry::Telemetry;
use crate::wire::{Request, Response};
use iolb_gpusim::DeviceSpec;
use iolb_records::Workload;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Virtual nodes each peer contributes to the hash ring. Enough that
/// three peers split a fingerprint space roughly evenly (the balance is
/// pinned by a unit test), few enough that ring construction and lookup
/// stay trivial.
pub const VNODES_PER_PEER: usize = 64;

/// Where a fleet peer listens: a filesystem Unix-socket path or a TCP
/// `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// A Unix-domain socket path (same-machine peers).
    Unix(PathBuf),
    /// A TCP `host:port` (networked peers).
    Tcp(String),
}

impl PeerAddr {
    /// Parses a peer spec. `tcp:HOST:PORT` and `unix:PATH` are explicit;
    /// a bare spec containing a colon and no path separator (e.g.
    /// `127.0.0.1:7070`) is TCP, anything else is a socket path.
    pub fn parse(spec: &str) -> PeerAddr {
        let spec = spec.trim();
        if let Some(addr) = spec.strip_prefix("tcp:") {
            return PeerAddr::Tcp(addr.to_string());
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            return PeerAddr::Unix(PathBuf::from(path));
        }
        if spec.contains(':') && !spec.contains('/') {
            PeerAddr::Tcp(spec.to_string())
        } else {
            PeerAddr::Unix(PathBuf::from(spec))
        }
    }

    /// The peer's stable identity on the hash ring (and in diagnostics):
    /// the canonical `tcp:`/`unix:` form of the address.
    pub fn label(&self) -> String {
        match self {
            PeerAddr::Unix(path) => format!("unix:{}", path.display()),
            PeerAddr::Tcp(addr) => format!("tcp:{addr}"),
        }
    }

    fn connect(&self) -> std::io::Result<PeerClient> {
        match self {
            PeerAddr::Unix(path) => SocketBackend::connect(path).map(PeerClient::Unix),
            PeerAddr::Tcp(addr) => TcpBackend::connect(addr.as_str()).map(PeerClient::Tcp),
        }
    }
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One connected peer, whichever transport it speaks.
enum PeerClient {
    Unix(SocketBackend),
    Tcp(TcpBackend),
}

impl PeerClient {
    fn call(&self, request: &Request) -> Result<Response, BackendError> {
        match self {
            PeerClient::Unix(backend) => backend.call(request),
            PeerClient::Tcp(backend) => backend.call(request),
        }
    }
}

/// Why one peer call did not produce a usable response.
enum CallFailure {
    /// The peer is unusable (connect refused, transport died, protocol
    /// garbage): mark it dead, re-route its keys.
    PeerDown(BackendError),
    /// The peer is alive and answered with an application error —
    /// failover would mask a real bug, so this propagates.
    Fatal(BackendError),
}

/// Mutable fleet state: lazily-established connections plus liveness.
struct FleetState {
    clients: Vec<Option<PeerClient>>,
    dead: Vec<bool>,
}

struct RouterInner {
    peers: Vec<PeerAddr>,
    /// `(vnode hash, peer index)`, sorted by hash — the ring.
    ring: Vec<(u64, usize)>,
    state: Mutex<FleetState>,
    /// Client-side registry: per-peer request counters and failover
    /// counts. Purely observational — routing never reads it.
    telemetry: Telemetry,
}

/// A [`Backend`] over a fleet of daemons: consistent-hash routing,
/// per-peer sub-sessions, failover to survivors. Cheap to clone (clones
/// share connections and liveness state).
#[derive(Clone)]
pub struct FleetRouter {
    inner: Arc<RouterInner>,
}

impl FleetRouter {
    /// Builds a router over the given peers. No I/O happens here:
    /// connections are established lazily on first use, and a peer that
    /// refuses its first connect is simply marked dead (its key range
    /// fails over to the survivors).
    pub fn new(peers: Vec<PeerAddr>) -> Self {
        let mut ring: Vec<(u64, usize)> = peers
            .iter()
            .enumerate()
            .flat_map(|(at, peer)| {
                let label = peer.label();
                (0..VNODES_PER_PEER).map(move |replica| (fnv1a(&format!("{label}#{replica}")), at))
            })
            .collect();
        // Sort by (hash, peer label) so the ring is identical whatever
        // order the peers were listed in — hash ties (absurdly unlikely,
        // but determinism must not rest on luck) break on the label.
        ring.sort_by(|a, b| {
            a.0.cmp(&b.0).then_with(|| peers[a.1].label().cmp(&peers[b.1].label()))
        });
        let state = Mutex::new(FleetState {
            clients: (0..peers.len()).map(|_| None).collect(),
            dead: vec![false; peers.len()],
        });
        Self { inner: Arc::new(RouterInner { peers, ring, state, telemetry: Telemetry::new() }) }
    }

    /// Convenience: [`new`](Self::new) over parsed specs.
    pub fn from_specs(specs: &[String]) -> Self {
        Self::new(specs.iter().map(|s| PeerAddr::parse(s)).collect())
    }

    /// All configured peers, in spec order.
    pub fn peers(&self) -> &[PeerAddr] {
        &self.inner.peers
    }

    /// Peers currently considered alive.
    pub fn live_peers(&self) -> usize {
        let st = self.inner.state.lock().expect("fleet state poisoned");
        st.dead.iter().filter(|&&d| !d).count()
    }

    /// The router's client-side metrics registry (per-peer request
    /// counters `iolb_fleet_requests{peer="..."}`, failovers). Shared by
    /// clones; [`Backend::stats`] folds it into the fleet aggregate.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The fingerprint of one request on one device — the routing key.
    pub fn fingerprint(request: &TuneRequest, device: &DeviceSpec) -> String {
        Workload::new(request.shape, request.kind, device.name, device.smem_per_sm).fingerprint()
    }

    /// Which peer a fingerprint routes to right now (ignoring dead
    /// peers). `None` only when every peer is dead. Pure ring math plus
    /// the liveness set — no I/O — so tests can pin assignments.
    pub fn route_fingerprint(&self, fingerprint: &str) -> Option<&PeerAddr> {
        let st = self.inner.state.lock().expect("fleet state poisoned");
        self.route(fingerprint, &st.dead).map(|at| &self.inner.peers[at])
    }

    /// First alive peer clockwise from the fingerprint's hash.
    fn route(&self, fingerprint: &str, dead: &[bool]) -> Option<usize> {
        let ring = &self.inner.ring;
        if ring.is_empty() {
            return None;
        }
        let hash = fnv1a(fingerprint);
        let start = ring.partition_point(|&(h, _)| h < hash);
        (0..ring.len()).map(|i| ring[(start + i) % ring.len()].1).find(|&peer| !dead[peer])
    }

    /// One request/response exchange with a peer, connecting lazily. On
    /// transport or protocol failure the peer is marked dead and its
    /// connection dropped; daemon-reported errors are fatal.
    fn call_peer(&self, peer: usize, request: &Request) -> Result<Response, CallFailure> {
        let mut st = self.inner.state.lock().expect("fleet state poisoned");
        if st.dead[peer] {
            return Err(CallFailure::PeerDown(BackendError::Transport(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("peer {} is dead", self.inner.peers[peer]),
            ))));
        }
        if st.clients[peer].is_none() {
            match self.inner.peers[peer].connect() {
                Ok(client) => st.clients[peer] = Some(client),
                Err(e) => {
                    st.dead[peer] = true;
                    self.inner.telemetry.incr("iolb_fleet_failovers_total", 1);
                    return Err(CallFailure::PeerDown(BackendError::Transport(e)));
                }
            }
        }
        self.inner.telemetry.incr(
            &format!("iolb_fleet_requests{{peer=\"{}\"}}", self.inner.peers[peer].label()),
            1,
        );
        let outcome = st.clients[peer].as_ref().expect("connected above").call(request);
        match outcome {
            Ok(response) => Ok(response),
            Err(e @ BackendError::Remote(_)) => Err(CallFailure::Fatal(e)),
            Err(e) => {
                // Transport died or the peer spoke garbage: either way it
                // cannot be trusted with this key range any more.
                st.dead[peer] = true;
                st.clients[peer] = None;
                self.inner.telemetry.incr("iolb_fleet_failovers_total", 1);
                Err(CallFailure::PeerDown(e))
            }
        }
    }

    /// Submits the given request positions to whatever peers own them,
    /// failing over (and re-routing) until every position is accepted or
    /// no peer is left. Shared by the initial submit and by
    /// [`FleetSession::wait`]'s mid-session failover.
    fn submit_positions(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
        positions: Vec<usize>,
        fingerprints: &[String],
    ) -> Result<(Vec<SubSession>, usize), BackendError> {
        let mut subs = Vec::new();
        let mut unique = 0;
        let mut remaining = positions;
        while !remaining.is_empty() {
            // Group by owning peer under the *current* liveness set.
            let mut by_peer: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            {
                let st = self.inner.state.lock().expect("fleet state poisoned");
                for &at in &remaining {
                    let peer = self.route(&fingerprints[at], &st.dead).ok_or_else(no_live_peers)?;
                    by_peer.entry(peer).or_default().push(at);
                }
            }
            remaining = Vec::new();
            for (peer, positions) in by_peer {
                let sub_requests: Vec<TuneRequest> =
                    positions.iter().map(|&at| requests[at]).collect();
                let request = Request::Submit { device: device.clone(), requests: sub_requests };
                match self.call_peer(peer, &request) {
                    Ok(Response::Submitted { session, unique: u }) => {
                        unique += u;
                        subs.push(SubSession { peer, session, positions });
                    }
                    Ok(other) => {
                        return Err(BackendError::Protocol(format!(
                            "expected Submitted, got {other:?}"
                        )))
                    }
                    Err(CallFailure::Fatal(e)) => return Err(e),
                    Err(CallFailure::PeerDown(_)) => remaining.extend(positions),
                }
            }
        }
        Ok((subs, unique))
    }
}

fn no_live_peers() -> BackendError {
    BackendError::Transport(std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "no live fleet peers remain",
    ))
}

/// One peer's slice of a fleet session.
struct SubSession {
    peer: usize,
    /// The daemon-side session id on that peer.
    session: u64,
    /// Original request positions this peer owns.
    positions: Vec<usize>,
}

/// A batch scattered across the fleet; [`wait`](BackendSession::wait)
/// gathers per-peer results back into request order, re-submitting a
/// dead peer's slice to the survivors.
pub struct FleetSession {
    router: FleetRouter,
    device: DeviceSpec,
    requests: Vec<TuneRequest>,
    fingerprints: Vec<String>,
    subs: Vec<SubSession>,
    unique: usize,
}

impl BackendSession for FleetSession {
    fn request_count(&self) -> usize {
        self.requests.len()
    }

    fn unique_workloads(&self) -> usize {
        self.unique
    }

    fn wait(mut self) -> Result<Vec<Option<ServeResult>>, BackendError> {
        let mut slots: Vec<Option<Option<ServeResult>>> = vec![None; self.requests.len()];
        while let Some(sub) = self.subs.pop() {
            match self.router.call_peer(sub.peer, &Request::Wait { session: sub.session }) {
                Ok(Response::Results { results }) if results.len() == sub.positions.len() => {
                    for (&at, result) in sub.positions.iter().zip(results) {
                        slots[at] = Some(result);
                    }
                }
                Ok(other) => {
                    return Err(BackendError::Protocol(format!(
                        "peer {} returned {other:?} for a Wait",
                        self.router.inner.peers[sub.peer]
                    )))
                }
                Err(CallFailure::Fatal(e)) => return Err(e),
                Err(CallFailure::PeerDown(e)) => {
                    // The peer died with our sub-session on it. Tuning is
                    // hermetic, so re-running the slice on the survivors
                    // reproduces the dead peer's results bit for bit.
                    crate::log_event!(
                        Warn,
                        "fleet.peer_lost",
                        peer = self.router.inner.peers[sub.peer],
                        error = e,
                        rerouted = sub.positions.len(),
                    );
                    let (resubmitted, _) = self.router.submit_positions(
                        &self.requests,
                        &self.device,
                        sub.positions,
                        &self.fingerprints,
                    )?;
                    self.subs.extend(resubmitted);
                }
            }
        }
        Ok(slots.into_iter().map(|slot| slot.expect("every position submitted")).collect())
    }
}

impl Backend for FleetRouter {
    type Session = FleetSession;

    fn submit_batch(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
    ) -> Result<FleetSession, BackendError> {
        let fingerprints: Vec<String> =
            requests.iter().map(|r| Self::fingerprint(r, device)).collect();
        let (subs, unique) =
            self.submit_positions(requests, device, (0..requests.len()).collect(), &fingerprints)?;
        Ok(FleetSession {
            router: self.clone(),
            device: device.clone(),
            requests: requests.to_vec(),
            fingerprints,
            subs,
            unique,
        })
    }

    /// Flushes every live peer. `persisted` is the conjunction: it is
    /// only `true` when every configured peer answered and persisted —
    /// a dead peer means some slice of the fleet's state may not be on
    /// disk (anti-entropy will heal it once the peer returns).
    fn sync(&self) -> Result<SyncOutcome, BackendError> {
        let mut persisted = true;
        let mut total = 0;
        let mut any = false;
        for peer in 0..self.inner.peers.len() {
            match self.call_peer(peer, &Request::Sync) {
                Ok(Response::Synced { persisted: p, total: t }) => {
                    persisted &= p;
                    total += t;
                    any = true;
                }
                Ok(other) => {
                    return Err(BackendError::Protocol(format!("expected Synced, got {other:?}")))
                }
                Err(CallFailure::Fatal(e)) => return Err(e),
                Err(CallFailure::PeerDown(_)) => persisted = false,
            }
        }
        if any {
            Ok(SyncOutcome { persisted, total })
        } else {
            Err(no_live_peers())
        }
    }

    /// Aggregates the fleet's counters: stats sum saturatingly across
    /// live peers (dead peers contribute nothing); metric registries
    /// merge by name (the order-free [`crate::telemetry::MetricsSnapshot::merge`],
    /// so a peer missing a metric another peer has is fine), and the
    /// router's own client-side registry rides along.
    fn stats(&self) -> Result<StatsReport, BackendError> {
        let mut aggregate: Option<StatsReport> = None;
        for peer in 0..self.inner.peers.len() {
            match self.call_peer(peer, &Request::Stats) {
                Ok(Response::Stats { snapshot, metrics }) => {
                    aggregate = Some(match aggregate.take() {
                        None => StatsReport { snapshot: *snapshot, metrics },
                        Some(mut acc) => {
                            acc.snapshot = ServiceSnapshot {
                                stats: acc.snapshot.stats.saturating_add(&snapshot.stats),
                                queue_len: acc.snapshot.queue_len + snapshot.queue_len,
                                budget_left: acc
                                    .snapshot
                                    .budget_left
                                    .saturating_add(snapshot.budget_left),
                            };
                            acc.metrics.merge(&metrics);
                            acc
                        }
                    });
                }
                Ok(other) => {
                    return Err(BackendError::Protocol(format!("expected Stats, got {other:?}")))
                }
                Err(CallFailure::Fatal(e)) => return Err(e),
                Err(CallFailure::PeerDown(_)) => {}
            }
        }
        let mut report = aggregate.ok_or_else(no_live_peers)?;
        report.metrics.merge(&self.inner.telemetry.snapshot());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;

    fn specs() -> Vec<PeerAddr> {
        vec![
            PeerAddr::parse("127.0.0.1:7001"),
            PeerAddr::parse("tcp:127.0.0.1:7002"),
            PeerAddr::parse("/tmp/iolb-fleet-c.sock"),
        ]
    }

    fn sample_fingerprints(n: usize) -> Vec<String> {
        let device = iolb_gpusim::DeviceSpec::v100();
        (0..n)
            .map(|i| {
                let request = TuneRequest::bare(
                    ConvShape::new(8 + i, 14, 14, 16, 1, 1, 1, 0),
                    TileKind::Direct,
                );
                FleetRouter::fingerprint(&request, &device)
            })
            .collect()
    }

    #[test]
    fn peer_specs_parse_to_the_right_transport() {
        assert_eq!(PeerAddr::parse("127.0.0.1:7070"), PeerAddr::Tcp("127.0.0.1:7070".into()));
        assert_eq!(PeerAddr::parse("tcp:host:1"), PeerAddr::Tcp("host:1".into()));
        assert_eq!(
            PeerAddr::parse("/var/run/a.sock"),
            PeerAddr::Unix(PathBuf::from("/var/run/a.sock"))
        );
        assert_eq!(PeerAddr::parse("unix:rel.sock"), PeerAddr::Unix(PathBuf::from("rel.sock")));
        assert_eq!(
            PeerAddr::parse("/dir:with/colon.sock"),
            PeerAddr::Unix(PathBuf::from("/dir:with/colon.sock")),
            "a path separator wins over a colon"
        );
    }

    /// The ISSUE 6 router-determinism pin: the same fingerprint set
    /// routes identically across router instances and across peer-list
    /// orderings.
    #[test]
    fn routing_is_deterministic_and_order_independent() {
        let fingerprints = sample_fingerprints(50);
        let a = FleetRouter::new(specs());
        let b = FleetRouter::new(specs());
        let mut reversed = specs();
        reversed.reverse();
        let c = FleetRouter::new(reversed);
        for fp in &fingerprints {
            let owner = a.route_fingerprint(fp).unwrap().clone();
            assert_eq!(b.route_fingerprint(fp), Some(&owner), "two routers disagree on {fp}");
            assert_eq!(c.route_fingerprint(fp), Some(&owner), "peer order changed routing of {fp}");
        }
    }

    #[test]
    fn routing_spreads_load_across_peers() {
        let router = FleetRouter::new(specs());
        let mut per_peer = BTreeMap::new();
        for fp in sample_fingerprints(60) {
            *per_peer.entry(router.route_fingerprint(&fp).unwrap().label()).or_insert(0usize) += 1;
        }
        assert_eq!(per_peer.len(), 3, "every peer owns some keys: {per_peer:?}");
    }

    /// Killing a peer moves exactly its keys; survivors keep theirs.
    #[test]
    fn failover_moves_only_the_dead_peers_range() {
        let router = FleetRouter::new(specs());
        let fingerprints = sample_fingerprints(60);
        let before: Vec<PeerAddr> =
            fingerprints.iter().map(|fp| router.route_fingerprint(fp).unwrap().clone()).collect();
        let victim = before[0].clone();
        {
            let mut st = router.inner.state.lock().unwrap();
            let at = router.inner.peers.iter().position(|p| *p == victim).unwrap();
            st.dead[at] = true;
        }
        for (fp, owner) in fingerprints.iter().zip(&before) {
            let now = router.route_fingerprint(fp).unwrap();
            if *owner == victim {
                assert_ne!(*now, victim, "{fp} still routes to the dead peer");
            } else {
                assert_eq!(now, owner, "{fp} moved although its peer survived");
            }
        }
        assert_eq!(router.live_peers(), 2);
    }
}
