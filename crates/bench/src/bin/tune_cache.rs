//! `tune-cache` — inspect, verify, compact and merge tuning-record
//! stores (the operational face of `iolb-records`).
//!
//! ```console
//! $ tune-cache stats   store.jsonl              # size / workload summary
//! $ tune-cache top     store.jsonl [--k N]      # best records per workload
//! $ tune-cache check   store.jsonl              # codec gate (CI): canonical + stable round-trip
//! $ tune-cache compact store.jsonl --keep N [-o out.jsonl]
//! $ tune-cache merge   -o out.jsonl a.jsonl b.jsonl [...]
//! $ tune-cache gen     store.jsonl              # deterministically tune two small layers into a store
//! ```
//!
//! `check` is wired into CI against a committed fixture store: it fails
//! (exit 1) if any line no longer parses, if the file is not in the
//! canonical serialization the current codec produces, or if
//! parse→serialize→parse→serialize is not byte-stable — i.e. any codec
//! regression that would corrupt or silently rewrite users' stores.

use iolb_bench::{
    load_store_or_exit, run_tuner_with_store, save_store_or_exit, StoreMode, TunerKind,
};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::RecordStore;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tune-cache <stats|top|check|compact|merge|gen> [args]\n\
         \n\
         stats   <store>                    record/workload counts and cost ranges\n\
         top     <store> [--k N]            best N records per workload (default 3)\n\
         check   <store>                    exit non-zero unless the store parses cleanly,\n\
         \u{20}                                  is canonical, and round-trips byte-identically\n\
         compact <store> --keep N [-o OUT]  keep only the N best records per workload\n\
         merge   -o OUT <in> [<in>...]      merge stores (best cost wins on duplicates)\n\
         gen     <store>                    generate a small deterministic store by tuning\n\
         \u{20}                                  two AlexNet-style layers (fixture/demo)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), &args[1..]) {
        ("stats", [store]) => stats(Path::new(store)),
        ("top", [store, rest @ ..]) => top(Path::new(store), flag_value(rest, "--k").unwrap_or(3)),
        ("check", [store]) => check(Path::new(store)),
        ("compact", [store, rest @ ..]) => {
            let Some(keep) = flag_value(rest, "--keep") else {
                eprintln!("compact requires --keep N");
                return ExitCode::from(2);
            };
            let out = flag_path(rest, "-o").unwrap_or_else(|| PathBuf::from(store));
            compact(Path::new(store), keep, &out)
        }
        ("merge", rest) => {
            let Some(out) = flag_path(rest, "-o") else {
                eprintln!("merge requires -o OUT");
                return ExitCode::from(2);
            };
            let inputs: Vec<&String> = rest
                .iter()
                .skip_while(|a| *a != "-o")
                .skip(2)
                .chain(rest.iter().take_while(|a| *a != "-o"))
                .collect();
            if inputs.is_empty() {
                eprintln!("merge requires at least one input store");
                return ExitCode::from(2);
            }
            merge(&inputs, &out)
        }
        ("gen", [store]) => gen(Path::new(store)),
        _ => usage(),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1)?.parse().ok()
}

fn flag_path(args: &[String], flag: &str) -> Option<PathBuf> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1).map(PathBuf::from)
}

fn stats(path: &Path) -> ExitCode {
    let store = load_store_or_exit(path);
    println!(
        "{}: {} record(s) across {} workload(s)",
        path.display(),
        store.len(),
        store.workload_count()
    );
    for fp in store.fingerprints() {
        let recs = store.records(fp);
        let best = recs.first().map_or(f64::NAN, |r| r.cost_ms);
        let worst = recs.last().map_or(f64::NAN, |r| r.cost_ms);
        println!("  {:>5} record(s)  best {best:.6} ms  worst {worst:.6} ms  {fp}", recs.len());
    }
    ExitCode::SUCCESS
}

fn top(path: &Path, k: usize) -> ExitCode {
    let store = load_store_or_exit(path);
    for fp in store.fingerprints() {
        println!("{fp}");
        for rec in store.records(fp).iter().take(k) {
            println!("  {:>10.6} ms  seed {:>6}  {}", rec.cost_ms, rec.seed, rec.config);
        }
    }
    ExitCode::SUCCESS
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check FAILED: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let (store, report) = RecordStore::from_jsonl(&text);
    if !report.is_clean() {
        eprintln!("check FAILED: {} line(s) no longer parse:", report.skipped.len());
        for (line, reason) in &report.skipped {
            eprintln!("  {}:{line}: {reason}", path.display());
        }
        return ExitCode::FAILURE;
    }
    let canonical = store.to_jsonl();
    if text != canonical {
        eprintln!(
            "check FAILED: {} is not in the codec's canonical serialization \
             (re-save it with `tune-cache compact {} --keep 1000000`)",
            path.display(),
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let (reparsed, report2) = RecordStore::from_jsonl(&canonical);
    if !report2.is_clean() || reparsed.to_jsonl() != canonical {
        eprintln!("check FAILED: parse -> serialize -> parse is not byte-stable");
        return ExitCode::FAILURE;
    }
    println!(
        "check OK: {} record(s), {} workload(s), canonical and byte-stable",
        store.len(),
        store.workload_count()
    );
    ExitCode::SUCCESS
}

fn compact(path: &Path, keep: usize, out: &Path) -> ExitCode {
    let mut store = load_store_or_exit(path);
    let dropped = store.compact(keep);
    save_store_or_exit(&store, out);
    println!(
        "compacted {}: dropped {dropped}, kept {} -> {}",
        path.display(),
        store.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn merge(inputs: &[&String], out: &Path) -> ExitCode {
    let mut merged = RecordStore::new();
    for input in inputs {
        let store = load_store_or_exit(Path::new(input));
        let inserted = merged.merge(store);
        println!("merged {input}: {inserted} record(s) new or improved");
    }
    save_store_or_exit(&merged, out);
    ExitCode::SUCCESS
}

/// Deterministically tunes two related AlexNet-style layers into a fresh
/// store: everything is seeded, so the output is byte-reproducible —
/// which is exactly what a committed CI fixture needs.
fn gen(path: &Path) -> ExitCode {
    let device = DeviceSpec::v100();
    let mut store = RecordStore::new();
    let layers = [
        ConvShape::new(256, 13, 13, 384, 3, 3, 1, 1), // AlexNet conv3
        ConvShape::new(384, 13, 13, 256, 3, 3, 1, 1), // AlexNet conv4
    ];
    for (i, shape) in layers.iter().enumerate() {
        let out = run_tuner_with_store(
            TunerKind::Ate,
            shape,
            TileKind::Direct,
            &device,
            48,
            1000 + i as u64,
            &mut store,
            StoreMode::WarmStart,
        );
        match out {
            Some(r) => println!(
                "tuned {shape}: best {:.6} ms in {} attempt(s) ({} fresh, {} cached{})",
                r.result.best_ms,
                r.result.measurements,
                r.fresh_measurements,
                r.cache_hits,
                if r.transferred { ", transfer-seeded" } else { "" },
            ),
            None => {
                eprintln!("error: no measurable configuration for {shape}");
                return ExitCode::FAILURE;
            }
        }
    }
    save_store_or_exit(&store, path);
    ExitCode::SUCCESS
}
