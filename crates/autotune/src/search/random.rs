//! Uniform random search — TVM's `random` tuner baseline.

use super::{dedupe, History, Searcher};
use crate::cost_model::CostModel;
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;

/// Samples configurations uniformly; ignores the cost model entirely.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl Searcher for RandomSearch {
    fn propose(
        &mut self,
        space: &ConfigSpace,
        _model: &dyn CostModel,
        history: &History,
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<ScheduleConfig> {
        let mut proposals = Vec::with_capacity(batch * 4);
        for _ in 0..batch * 8 {
            if let Some(cfg) = space.sample(rng, 256) {
                proposals.push(cfg);
            }
        }
        dedupe(proposals, history, batch)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::NoModel;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use rand::SeedableRng;

    #[test]
    fn proposes_fresh_valid_configs() {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let space = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, false);
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = History::new();
        let mut s = RandomSearch;
        let first = s.propose(&space, &NoModel, &h, 8, &mut rng);
        assert!(!first.is_empty());
        for cfg in &first {
            assert!(space.contains(cfg));
            h.push(*cfg, 1.0);
        }
        // Next round avoids everything already measured.
        let second = s.propose(&space, &NoModel, &h, 8, &mut rng);
        for cfg in &second {
            assert!(!h.contains(cfg));
        }
    }
}
