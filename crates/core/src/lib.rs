//! # iolb-core — I/O lower-bound theory for CNN convolutions
//!
//! From-scratch implementation of the theory in *"I/O Lower Bounds for
//! Auto-tuning of Convolutions in CNNs"* (Zhang, Xiao & Tan, PPoPP 2021):
//!
//! * [`shapes`] — convolution geometry, reuse factor `R` (Eq. 13), Winograd
//!   tile parameters `F(e×e, r×r)`.
//! * [`phi_psi`] — the per-step maximum vertex-generation functions
//!   `phi_j`/`psi_j` with the paper's closed-form bounds
//!   (Lemmas 4.9–4.10, 4.15–4.18).
//! * [`composite`] — the general composite-algorithm machinery: numeric
//!   evaluation of `T(S)` (Theorem 4.5) and the I/O lower bound
//!   `Q ≥ S(|V|/T(2S) − 1)` (Theorem 4.6).
//! * [`direct`] — closed forms for the direct convolution: Lemma 4.8 vertex
//!   count, Lemma 4.11 `T(S)`, Theorem 4.12 bound, and the §5.2 dataflow
//!   I/O model (Eqs. 20–21) with the optimality condition `xy = Rz`.
//! * [`winograd`] — closed forms for the Winograd algorithm: Lemma 4.14,
//!   Lemma 4.19, Theorem 4.20, and the §5.3 dataflow model (Eqs. 22–23).
//! * [`optimality`] — integer tile selection under the Table 1 constraints.
//!
//! The crate is pure math: no I/O, no threads, no dependencies. The pebble
//! game substrate that *validates* these bounds lives in `iolb-pebble`; the
//! executable schedules live in `iolb-dataflow`.
//!
//! ## Units
//!
//! Fast-memory size `S` and all I/O volumes are measured in **elements**
//! (one `f32` word), matching the red-blue pebble game where a pebble holds
//! one value. Byte conversions belong to the simulator layer.
//!
//! ## Example
//!
//! ```
//! use iolb_core::shapes::ConvShape;
//! use iolb_core::{direct, winograd};
//! use iolb_core::shapes::WinogradTile;
//!
//! // ResNet-style 3x3 layer.
//! let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
//! let s = 4096.0; // fast memory: 4096 elements (16 KiB of f32)
//!
//! let q_direct = direct::io_lower_bound(&shape, s);
//! let q_wino = winograd::io_lower_bound(&shape, WinogradTile::F2X3, s);
//! assert!(q_direct > 0.0 && q_wino > 0.0);
//!
//! // The paper's dataflows sit within a small constant of their bounds.
//! assert!(direct::dataflow_optimal_io(&shape, s, 1.0) >= q_direct);
//! ```

#![allow(clippy::needless_range_loop)] // index loops read clearer in numeric code
pub mod composite;
pub mod direct;
pub mod epilogue;
pub mod matmul;
pub mod optimality;
pub mod phi_psi;
pub mod shapes;
pub mod winograd;

pub use epilogue::Epilogue;
pub use shapes::{ConvShape, ShapeError, WinogradTile};

/// Which convolution algorithm a bound or schedule refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Direct convolution (paper §2.2, Fig. 4).
    Direct,
    /// Winograd algorithm with the given tile (paper §2.3, Fig. 5).
    Winograd(WinogradTile),
}

impl Algorithm {
    /// I/O lower bound for this algorithm on `shape` with fast memory `s`
    /// (elements). Dispatches to Theorem 4.12 / Theorem 4.20.
    pub fn io_lower_bound(&self, shape: &ConvShape, s: f64) -> f64 {
        match self {
            Algorithm::Direct => direct::io_lower_bound(shape, s),
            Algorithm::Winograd(t) => winograd::io_lower_bound(shape, *t, s),
        }
    }

    /// I/O volume of the paper's near-optimal dataflow (Eq. 21 / Eq. 23).
    pub fn dataflow_io(&self, shape: &ConvShape, s: f64, np: f64) -> f64 {
        match self {
            Algorithm::Direct => direct::dataflow_optimal_io(shape, s, np),
            Algorithm::Winograd(t) => winograd::dataflow_optimal_io(shape, *t, s, np),
        }
    }

    /// Arithmetic cost (FLOPs) of this algorithm on `shape`. Winograd
    /// divides the direct multiply count by the per-tile saving and adds
    /// transform overhead proportional to tile count.
    pub fn flops(&self, shape: &ConvShape) -> f64 {
        match self {
            Algorithm::Direct => shape.flops() as f64,
            Algorithm::Winograd(t) => {
                let tiles = (shape.hout().div_ceil(t.e) * shape.wout().div_ceil(t.e)) as f64
                    * shape.batch as f64;
                let a2 = (t.a() * t.a()) as f64;
                // Elementwise multiplies: tiles * Cout * Cin * a^2 MACs.
                let mul = tiles * shape.cout as f64 * shape.cin as f64 * a2;
                // Transform adds (input, kernel amortised, output), counted
                // as ~4 a^2 ops per tile-channel per stage.
                let transforms = tiles * (shape.cin as f64 + shape.cout as f64) * 4.0 * a2;
                2.0 * mul + transforms
            }
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Direct => write!(f, "direct"),
            Algorithm::Winograd(t) => write!(f, "winograd-F({}x{},{}x{})", t.e, t.e, t.r, t.r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_dispatch_consistent_with_modules() {
        let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
        let s = 4096.0;
        assert_eq!(Algorithm::Direct.io_lower_bound(&shape, s), direct::io_lower_bound(&shape, s));
        let t = WinogradTile::F2X3;
        assert_eq!(
            Algorithm::Winograd(t).io_lower_bound(&shape, s),
            winograd::io_lower_bound(&shape, t, s)
        );
    }

    #[test]
    fn winograd_flops_below_direct_for_3x3() {
        let shape = ConvShape::square(256, 56, 256, 3, 1, 1);
        let d = Algorithm::Direct.flops(&shape);
        let w = Algorithm::Winograd(WinogradTile::F4X3).flops(&shape);
        assert!(w < d, "winograd {w} direct {d}");
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Algorithm::Direct), "direct");
        assert_eq!(format!("{}", Algorithm::Winograd(WinogradTile::F2X3)), "winograd-F(2x2,3x3)");
    }
}
