//! Property tests for the kernel-path contract: the vector micro-kernels
//! are **bit-identical** to the scalar reference for arbitrary shapes,
//! thread counts, and input distributions — not "close", the same bits.
//! Sizes deliberately straddle the micro-tile edges (MR/NR remainders,
//! K-unroll tails, lane-width remainders at 8 and 16) where a reordered
//! accumulation would first show up.

use iolb_tensor::conv_ref::ConvParams;
use iolb_tensor::gemm::{gemm_with_path, MatRef};
use iolb_tensor::im2col::conv2d_im2col_with_path;
use iolb_tensor::kernel::KernelPath;
use iolb_tensor::tensor::Tensor4;
use iolb_tensor::winograd_conv::{conv2d_winograd_with_plan_path, WinogradPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn random_tensor(rng: &mut StdRng, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
    let mut t = Tensor4::zeros(n, c, h, w);
    for v in t.as_mut_slice().iter_mut() {
        *v = rng.gen_range(-1.0..1.0);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vector GEMM returns the same bits as scalar GEMM for arbitrary
    /// (m, k, n) — including sizes below one micro-tile, just over a
    /// lane width, and ragged remainders — at any thread count.
    #[test]
    fn gemm_paths_bit_identical(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut scalar = vec![0.0f32; m * n];
        let mut vector = vec![0.0f32; m * n];
        gemm_with_path(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut scalar, threads, KernelPath::Scalar);
        gemm_with_path(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut vector, threads, KernelPath::Vector);
        for (i, (s, v)) in scalar.iter().zip(&vector).enumerate() {
            prop_assert_eq!(
                s.to_bits(), v.to_bits(),
                "bit divergence at element {} of {}x{}x{} ({} threads): scalar {} vs vector {}",
                i, m, k, n, threads, s, v
            );
        }
    }

    /// Vector GEMM stays bit-identical on adversarial values: zeros
    /// (the zero-skip fold preserves `-0.0 + 0.0*b` sign semantics),
    /// denormals, and large-magnitude entries that make the fold order
    /// observable in the low mantissa bits.
    #[test]
    fn gemm_paths_bit_identical_on_adversarial_values(
        m in 1usize..16,
        k in 1usize..32,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spice = |rng: &mut StdRng| -> f32 {
            match rng.gen_range(0u8..6) {
                0 => 0.0,
                1 => -0.0,
                2 => f32::MIN_POSITIVE / 2.0, // denormal
                3 => rng.gen_range(-1e6..1e6),
                _ => rng.gen_range(-1.0..1.0),
            }
        };
        let a: Vec<f32> = (0..m * k).map(|_| spice(&mut rng)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| spice(&mut rng)).collect();
        let mut scalar = vec![0.0f32; m * n];
        let mut vector = vec![0.0f32; m * n];
        gemm_with_path(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut scalar, 1, KernelPath::Scalar);
        gemm_with_path(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut vector, 1, KernelPath::Vector);
        for (s, v) in scalar.iter().zip(&vector) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    /// im2col convolution (the GEMM consumer) produces the same bits on
    /// both paths for arbitrary shapes, strides, and padding.
    #[test]
    fn im2col_paths_bit_identical(
        n in 1usize..3,
        cin in 1usize..5,
        cout in 1usize..6,
        hw in 5usize..12,
        kh in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        threads in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= kh);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_tensor(&mut rng, n, cin, hw, hw);
        let weights = random_tensor(&mut rng, cout, cin, kh, kh);
        let params = ConvParams { stride, pad };
        let scalar = conv2d_im2col_with_path(&input, &weights, params, threads, KernelPath::Scalar);
        let vector = conv2d_im2col_with_path(&input, &weights, params, threads, KernelPath::Vector);
        prop_assert_eq!((scalar.n, scalar.c, scalar.h, scalar.w), (vector.n, vector.c, vector.h, vector.w));
        for (s, v) in scalar.as_slice().iter().zip(vector.as_slice()) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    /// Winograd convolution on the vector path matches the scalar
    /// oracle bit-for-bit across tile sizes F(2,3)/F(4,3) and shapes
    /// that leave partial tiles at the right/bottom edges.
    #[test]
    fn winograd_paths_bit_identical(
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..5,
        hw in 6usize..14,
        e in 2usize..5,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_tensor(&mut rng, n, cin, hw, hw);
        let weights = random_tensor(&mut rng, cout, cin, 3, 3);
        let params = ConvParams { stride: 1, pad };
        let plan = WinogradPlan::new(&weights, e);
        let scalar = conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Scalar);
        let vector = conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Vector);
        prop_assert_eq!((scalar.n, scalar.c, scalar.h, scalar.w), (vector.n, vector.c, vector.h, vector.w));
        for (s, v) in scalar.as_slice().iter().zip(vector.as_slice()) {
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }
    }
}
