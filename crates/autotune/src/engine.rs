//! The auto-tuning loop (paper §6.3, Fig. 8).
//!
//! Each iteration: (1) *Model Training* — refit the cost model on the
//! measurement history; (2) *Configuration Searching* — the explorer
//! proposes a batch of promising configurations; (3) *Dataset Updating* —
//! the batch is measured (on the simulator) and appended. Tuning stops
//! after a fixed budget or when the best measured time has not improved
//! for `patience` consecutive measurements, mirroring the paper's
//! "until the measurement runtime ... does not decrease for hundreds of
//! iterations".
//!
//! ## Parallelism and determinism
//!
//! The measurement step is the tuning loop's hot path (auto-tuners live
//! or die by measurement throughput), so each proposal batch is measured
//! on rayon workers. Tuning stays **bit-for-bit deterministic given the
//! seed**: the RNG is only consumed by the (serial) search step,
//! `Measurer::measure_ms` is a pure function of the configuration, and
//! the measured batch is folded into the history *serially in proposal
//! order*, so best/patience/curve bookkeeping is independent of how the
//! parallel measurements interleave. The same argument covers the
//! parallel featurization of the model-training rows: a pure per-row map
//! collected in row order.

use crate::cost_model::CostModel;
use crate::features::featurize;
use crate::measure::Measurer;
use crate::search::{History, Searcher};
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Tuning budget and convergence knobs.
#[derive(Debug, Clone, Copy)]
pub struct TuneParams {
    /// Maximum number of measurements.
    pub max_measurements: usize,
    /// Proposals measured per iteration.
    pub batch: usize,
    /// Stop when this many consecutive measurements fail to improve the
    /// best.
    pub patience: usize,
    /// RNG seed (tuning is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for TuneParams {
    fn default() -> Self {
        Self { max_measurements: 256, batch: 8, patience: 64, seed: 0xA7E }
    }
}

/// One point of the convergence curve (Fig. 11's series).
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Measurement index (1-based).
    pub measurement: usize,
    /// Best time found so far, ms.
    pub best_ms: f64,
    /// Best throughput so far, GFLOP/s.
    pub best_gflops: f64,
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best configuration found.
    pub best: ScheduleConfig,
    /// Its measured time, ms.
    pub best_ms: f64,
    /// Its throughput, GFLOP/s.
    pub best_gflops: f64,
    /// Total measurement attempts spent (budget consumed, including build
    /// failures).
    pub measurements: usize,
    /// Attempt index at which the best configuration was found — Table 2's
    /// "Iterations" column (trials until the reported solution).
    pub to_best: usize,
    /// Best-so-far curve, one point per measurement.
    pub curve: Vec<CurvePoint>,
    /// Name of the search strategy used.
    pub searcher: &'static str,
}

/// Runs the full tuning loop.
///
/// Returns `None` only if the space yields no measurable configuration at
/// all (practically: an infeasible shape/device pairing).
pub fn tune(
    space: &ConfigSpace,
    measurer: &Measurer,
    model: &mut dyn CostModel,
    searcher: &mut dyn Searcher,
    params: TuneParams,
) -> Option<TuneResult> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut history = History::new();
    let mut curve = Vec::new();
    let mut best: Option<(ScheduleConfig, f64)> = None;
    let mut stall = 0usize;
    // Failed builds (footprint overflows, unlaunchable blocks) consume
    // budget exactly like TVM's compile failures do.
    let mut attempts = 0usize;
    let mut to_best = 0usize;

    while attempts < params.max_measurements && stall < params.patience {
        // (1) Model training.
        if !history.is_empty() {
            let rows: Vec<Vec<f64>> = history
                .entries()
                .par_iter()
                .with_min_len(crate::gbt::PAR_MIN_ROWS)
                .map(|(c, _)| featurize(&space.shape, space.kind, c))
                .collect();
            let costs: Vec<f64> = history.entries().iter().map(|(_, t)| *t).collect();
            model.train(&rows, &costs);
        }
        // (2) Configuration searching.
        let mut batch = searcher.propose(space, model, &history, params.batch, &mut rng);
        if batch.is_empty() {
            break;
        }
        // (3) Dataset updating: measure the whole batch on rayon workers
        // (truncated to the remaining budget, which is exactly the set the
        // serial loop would have reached), then fold serially in proposal
        // order so the bookkeeping is schedule-independent.
        batch.truncate(params.max_measurements - attempts);
        let measured = measurer.measure_batch(&batch);
        for (cfg, measurement) in batch.into_iter().zip(measured) {
            attempts += 1;
            let Some(ms) = measurement else {
                // Build failure: budget spent, nothing learned.
                stall += 1;
                continue;
            };
            history.push(cfg, ms);
            let improved = best.as_ref().is_none_or(|&(_, b)| ms < b);
            if improved {
                best = Some((cfg, ms));
                to_best = attempts;
                stall = 0;
            } else {
                stall += 1;
            }
            let (_, best_ms) = best.unwrap();
            curve.push(CurvePoint {
                measurement: attempts,
                best_ms,
                best_gflops: measurer.gflops(best_ms),
            });
        }
    }

    best.map(|(cfg, ms)| TuneResult {
        best: cfg,
        best_ms: ms,
        best_gflops: measurer.gflops(ms),
        measurements: attempts,
        to_best,
        curve,
        searcher: searcher.name(),
    })
}

/// Transfer tuning: tunes a sequence of related problems (e.g. the conv
/// layers of one network) while *sharing one cost model* across them.
///
/// Before each layer's run the model is warmed on the accumulated
/// cross-layer history (best configs + random probes of earlier layers);
/// the features are shape-relative (condition deviation, occupancy proxy,
/// modelled I/O), so what the model learns on one layer transfers to the
/// next. Within a layer, [`tune`] retrains on the layer's own history as
/// usual — the transfer buys a *guided first batch* instead of a blind
/// one, which is where per-layer tuning wastes the most budget. (TVM ships
/// the same idea as its "transfer learning" tuners.)
///
/// Returns one [`TuneResult`] per `(space, measurer)` pair, in order.
pub fn tune_transfer(
    problems: &[(ConfigSpace, Measurer)],
    model: &mut dyn CostModel,
    make_searcher: &mut dyn FnMut() -> Box<dyn Searcher>,
    params: TuneParams,
) -> Vec<Option<TuneResult>> {
    let mut shared_rows: Vec<Vec<f64>> = Vec::new();
    let mut shared_costs: Vec<f64> = Vec::new();
    let mut results = Vec::with_capacity(problems.len());
    for (i, (space, measurer)) in problems.iter().enumerate() {
        // Warm the model with everything measured so far.
        if !shared_rows.is_empty() {
            model.train(&shared_rows, &shared_costs);
        }
        let mut searcher = make_searcher();
        let layer_params = TuneParams { seed: params.seed.wrapping_add(i as u64), ..params };
        let result = tune(space, measurer, model, searcher.as_mut(), layer_params);
        // Fold this layer's strongest signal (its best config) plus a few
        // random probes into the shared history for the next layers.
        if let Some(r) = &result {
            shared_rows.push(crate::features::featurize(&space.shape, space.kind, &r.best));
            shared_costs.push(r.best_ms);
        }
        // Sampling stays serial (it owns the RNG stream); measuring the
        // probes is pure and fans out on rayon.
        let mut rng = StdRng::seed_from_u64(layer_params.seed ^ 0xBEEF);
        let probes: Vec<ScheduleConfig> =
            (0..16).filter_map(|_| space.sample(&mut rng, 128)).collect();
        let probe_times = measurer.measure_batch(&probes);
        for (cfg, ms) in probes.iter().zip(probe_times) {
            if let Some(ms) = ms {
                shared_rows.push(crate::features::featurize(&space.shape, space.kind, cfg));
                shared_costs.push(ms);
            }
        }
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::{GbtCostModel, NoModel};
    use crate::search::random::RandomSearch;
    use crate::search::walk::ParallelRandomWalk;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use iolb_gpusim::DeviceSpec;

    fn setup(pruned: bool) -> (ConfigSpace, Measurer) {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let device = DeviceSpec::v100();
        let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, pruned);
        let measurer = Measurer::new(device, shape, TileKind::Direct);
        (space, measurer)
    }

    #[test]
    fn tuning_finds_a_config_and_curve_is_monotone() {
        let (space, measurer) = setup(true);
        let mut model = GbtCostModel::default();
        let mut searcher = ParallelRandomWalk::new();
        let params = TuneParams { max_measurements: 48, batch: 6, patience: 48, seed: 1 };
        let result = tune(&space, &measurer, &mut model, &mut searcher, params).unwrap();
        assert!(result.best_ms > 0.0);
        assert!(result.measurements <= 48);
        // Best-so-far must be non-increasing in time, non-decreasing in
        // GFLOP/s.
        for w in result.curve.windows(2) {
            assert!(w[1].best_ms <= w[0].best_ms);
            assert!(w[1].best_gflops >= w[0].best_gflops - 1e-9);
        }
    }

    #[test]
    fn tuning_is_deterministic_given_seed() {
        let (space, measurer) = setup(true);
        let run = || {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(
                &space,
                &measurer,
                &mut model,
                &mut searcher,
                TuneParams { max_measurements: 24, batch: 4, patience: 24, seed: 9 },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_ms, b.best_ms);
    }

    #[test]
    fn best_config_beats_random_average() {
        let (space, measurer) = setup(true);
        let mut model = GbtCostModel::default();
        let mut searcher = ParallelRandomWalk::new();
        let result = tune(
            &space,
            &measurer,
            &mut model,
            &mut searcher,
            TuneParams { max_measurements: 64, batch: 8, patience: 64, seed: 2 },
        )
        .unwrap();
        // Average cost of pure random samples.
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let mut n = 0;
        for _ in 0..32 {
            if let Some(cfg) = space.sample(&mut rng, 256) {
                if let Some(ms) = measurer.measure_ms(&cfg) {
                    total += ms;
                    n += 1;
                }
            }
        }
        let avg = total / n as f64;
        assert!(result.best_ms < avg, "tuned {} not below random average {avg}", result.best_ms);
    }

    #[test]
    fn patience_stops_early() {
        let (space, measurer) = setup(true);
        let mut model = NoModel;
        let mut searcher = RandomSearch;
        let result = tune(
            &space,
            &measurer,
            &mut model,
            &mut searcher,
            TuneParams { max_measurements: 10_000, batch: 8, patience: 12, seed: 4 },
        )
        .unwrap();
        assert!(result.measurements < 10_000, "patience did not trigger: {}", result.measurements);
    }

    #[test]
    fn pruned_space_converges_at_least_as_fast() {
        // The paper's Table 2 claim, in miniature: measurements-to-best on
        // the pruned space do not exceed those on the full space by much;
        // and the pruned best is competitive.
        let (full, measurer) = setup(false);
        let (pruned, _) = setup(true);
        let run = |space: &ConfigSpace| {
            let mut model = GbtCostModel::default();
            let mut searcher = ParallelRandomWalk::new();
            tune(
                space,
                &measurer,
                &mut model,
                &mut searcher,
                TuneParams { max_measurements: 64, batch: 8, patience: 64, seed: 5 },
            )
            .unwrap()
        };
        let rf = run(&full);
        let rp = run(&pruned);
        // The pruned-space optimum is within 25% of the full-space one.
        assert!(
            rp.best_ms <= rf.best_ms * 1.25,
            "pruned best {} vs full best {}",
            rp.best_ms,
            rf.best_ms
        );
    }

    #[test]
    fn transfer_tuning_covers_all_layers() {
        let device = DeviceSpec::v100();
        let shapes = [
            ConvShape::square(64, 28, 32, 3, 1, 1),
            ConvShape::square(32, 28, 64, 3, 1, 1),
            ConvShape::square(64, 14, 64, 3, 1, 1),
        ];
        let problems: Vec<(ConfigSpace, Measurer)> = shapes
            .iter()
            .map(|&s| {
                (
                    ConfigSpace::new(s, TileKind::Direct, device.smem_per_sm, true),
                    Measurer::new(device.clone(), s, TileKind::Direct),
                )
            })
            .collect();
        let mut model = GbtCostModel::default();
        let mut make =
            || -> Box<dyn crate::search::Searcher> { Box::new(ParallelRandomWalk::new()) };
        let results = tune_transfer(
            &problems,
            &mut model,
            &mut make,
            TuneParams { max_measurements: 32, batch: 8, patience: 32, seed: 11 },
        );
        assert_eq!(results.len(), 3);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap_or_else(|| panic!("layer {i} untuned"));
            assert!(r.best_ms > 0.0);
        }
        // The shared model ends up trained.
        assert!(model.is_trained());
    }
}
