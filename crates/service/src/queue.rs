//! The tiered work queue: what to tune next, and why.
//!
//! The service fills its stores *before* workloads are requested, so it
//! has to decide which pending workload deserves measurement budget
//! first. Three tiers exist, in strictly descending priority:
//!
//! 1. **Batch** — members of a client batch session ([`crate::session`]):
//!    a caller is blocked on these *right now*, so they outrank all
//!    background work. Each batch job carries its session's group id so
//!    completion can be counted per group.
//! 2. **Transfer** — re-tunes behind provisionally-served anchored
//!    transfers: a client already *received* a config for these, so
//!    nobody blocks, but the served answer is only analytically bounded
//!    — closing that gap outranks speculative fill.
//! 3. **Registered** — layers of a registered network: background fill
//!    ahead of demand.
//! 4. **Neighbor** — shape-perturbation speculation about networks
//!    nobody has asked for yet.
//!
//! Within a tier the paper's thesis supplies the ranking: a workload
//! whose analytic dataflow I/O (the Eq. 20/22 cost model evaluated at
//! the no-search [`fast_config`] schedule) sits far above its I/O lower
//! bound has the most to gain from search, so its **I/O-bound gap**
//! `Q_model / Q_lower` is its priority. Neighbor jobs additionally scale
//! that gap by their perturbation kind's learned hit rate
//! (`TuningService::speculation_weight` in [`crate::service`]), so
//! speculation budget concentrates on the axes clients actually request.
//! Remaining ties break on the workload fingerprint, keeping the drain
//! order — and therefore the budget cutoff — fully deterministic.
//!
//! A workload pending at a weaker tier is *promoted* when re-pushed at a
//! stronger one (neighbor → registered when a speculated shape turns out
//! to be a real layer; anything → batch when a client asks for it), and
//! never demoted.
//!
//! [`fast_config`]: iolb_autotune::plan::fast_config

use iolb_autotune::plan::fast_config;
use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::Workload;
use std::collections::BTreeMap;

/// Which axis a speculative neighbor shape was perturbed along. The
/// service keeps per-kind hit/miss telemetry and stops enqueuing kinds
/// whose predictions never come true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PerturbationKind {
    CinHalved,
    CinDoubled,
    CoutHalved,
    CoutDoubled,
}

impl PerturbationKind {
    /// Every kind, in the canonical (telemetry-array) order.
    pub const ALL: [Self; 4] =
        [Self::CinHalved, Self::CinDoubled, Self::CoutHalved, Self::CoutDoubled];

    /// Index into per-kind telemetry arrays.
    pub fn index(self) -> usize {
        match self {
            Self::CinHalved => 0,
            Self::CinDoubled => 1,
            Self::CoutHalved => 2,
            Self::CoutDoubled => 3,
        }
    }

    /// Stable human-readable tag (used by the stats sidecar and CLI).
    pub fn label(self) -> &'static str {
        match self {
            Self::CinHalved => "cin-halved",
            Self::CinDoubled => "cin-doubled",
            Self::CoutHalved => "cout-halved",
            Self::CoutDoubled => "cout-doubled",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Priority tier of a pending job. Ordering is priority: batch members
/// (a client is waiting) before registered layers (background fill)
/// before speculative neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobTier {
    /// Member of a client batch session; `group` identifies the session
    /// so completion is countable per group.
    Batch { group: u64 },
    /// Background re-tune behind a provisionally-served anchored
    /// transfer: the client already has a (bounded but unproven) answer,
    /// so nothing blocks on this — but it outranks plain background fill.
    Transfer,
    /// Layer of a registered network.
    Registered,
    /// Shape-perturbation neighbor.
    Neighbor,
}

impl JobTier {
    /// Smaller drains first. Batch jobs share one rank regardless of
    /// group: which session submitted first must not starve another.
    pub fn rank(self) -> u8 {
        match self {
            Self::Batch { .. } => 0,
            Self::Transfer => 1,
            Self::Registered => 2,
            Self::Neighbor => 3,
        }
    }

    /// Whether budget exhaustion may drop this job. Batch jobs are user
    /// work — a session is blocked on them — so they are never dropped
    /// and never billed to the speculative budget.
    pub fn droppable(self) -> bool {
        !matches!(self, Self::Batch { .. })
    }

    /// Stable tag for telemetry (the per-tier drain-latency histograms).
    pub fn label(self) -> &'static str {
        match self {
            Self::Batch { .. } => "batch",
            Self::Transfer => "transfer",
            Self::Registered => "registered",
            Self::Neighbor => "neighbor",
        }
    }
}

/// One pending tuning task.
#[derive(Debug, Clone)]
pub struct Job {
    pub shape: ConvShape,
    pub kind: TileKind,
    /// Fused epilogue of the chain ([`Epilogue::None`] for bare convs —
    /// all background registration and speculation; only session batch
    /// and transfer jobs ever carry a chain).
    pub epilogue: Epilogue,
    pub device: DeviceSpec,
    pub tier: JobTier,
    /// For [`JobTier::Neighbor`] jobs: which perturbation predicted this
    /// shape (drives the speculation telemetry). `None` on other tiers.
    pub perturbation: Option<PerturbationKind>,
    /// When the job entered the queue — stamped by [`WorkQueue::push`]
    /// (and preserved across tier promotion), read by the claim paths
    /// for the queue-wait histogram. Observational only: never part of
    /// the drain order or the tuning trajectory.
    pub enqueued_at: Option<std::time::Instant>,
}

impl Job {
    /// The record-store identity of this job.
    pub fn workload(&self) -> Workload {
        Workload::new(self.shape, self.kind, self.device.name, self.device.smem_per_sm)
            .with_epilogue(self.epilogue)
    }

    pub fn fingerprint(&self) -> String {
        self.workload().fingerprint()
    }
}

/// The predicted I/O-bound gap of a workload: analytic dataflow I/O of
/// the no-search schedule over the I/O lower bound at that schedule's
/// stage-buffer size (both in elements). Always `>= 1` for feasible
/// workloads; infeasible ones (no valid fast config) rank last at 1.
pub fn io_gap(shape: &ConvShape, kind: TileKind, device: &DeviceSpec) -> f64 {
    let Some(cfg) = fast_config(shape, kind, device) else {
        return 1.0;
    };
    let s = cfg.sb_elems();
    let (q_model, q_lower) = match kind {
        TileKind::Direct => (
            iolb_dataflow::direct::analytic_io_elems(shape, &cfg),
            iolb_core::direct::io_lower_bound(shape, s),
        ),
        TileKind::Winograd(t) => (
            iolb_dataflow::winograd::analytic_io_elems(shape, t, &cfg),
            iolb_core::winograd::io_lower_bound(shape, t, s),
        ),
    };
    let gap = q_model / q_lower.max(1.0);
    if gap.is_finite() {
        gap.max(1.0)
    } else {
        1.0
    }
}

/// The I/O-bound gap of a *given* configuration on a shape: its analytic
/// dataflow I/O over the shape's I/O lower bound at the configuration's
/// stage-buffer size. `None` when the configuration does not validate on
/// the shape — a transferred config that cannot even launch has no gap.
pub fn config_io_gap(
    shape: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
    cfg: &iolb_dataflow::config::ScheduleConfig,
) -> Option<f64> {
    cfg.validate(shape, kind, device.smem_per_sm, false).ok()?;
    let s = cfg.sb_elems();
    let (q_model, q_lower) = match kind {
        TileKind::Direct => (
            iolb_dataflow::direct::analytic_io_elems(shape, cfg),
            iolb_core::direct::io_lower_bound(shape, s),
        ),
        TileKind::Winograd(t) => (
            iolb_dataflow::winograd::analytic_io_elems(shape, t, cfg),
            iolb_core::winograd::io_lower_bound(shape, t, s),
        ),
    };
    let gap = q_model / q_lower.max(1.0);
    gap.is_finite().then(|| gap.max(1.0))
}

/// The anchored-transfer gate: whether serving `cfg` (tuned for `donor`)
/// to `target` is provably within `gap_bound` of the analytic optimum.
/// Three conditions, all under the one bound:
///
/// 1. `cfg` validates on the target shape;
/// 2. the target's I/O-bound gap *at `cfg`* is at most `gap_bound`
///    times the gap of the target's own analytic reference schedule
///    ([`io_gap`]) — the transferred schedule moves no more data,
///    relative to the target's I/O lower bound, than `gap_bound` times
///    what the target could provably reach without tuning. The ratio of
///    the two gaps cancels the lower-bound scale, so the condition stays
///    meaningful even for layers whose absolute `Q_lower` is degenerate
///    (1x1 convolutions at large `S_b` bound to zero);
/// 3. the two shapes' I/O lower bounds (at `cfg`'s stage-buffer size)
///    are within `gap_bound` of each other — bucket-mates whose
///    analytic difficulty genuinely differs never merge.
pub fn transfer_admissible(
    target: &ConvShape,
    donor: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
    cfg: &iolb_dataflow::config::ScheduleConfig,
    gap_bound: f64,
) -> bool {
    let Some(gap) = config_io_gap(target, kind, device, cfg) else {
        return false;
    };
    if gap > gap_bound * io_gap(target, kind, device) {
        return false;
    }
    let s = cfg.sb_elems();
    let lower = |shape: &ConvShape| {
        let q = match kind {
            TileKind::Direct => iolb_core::direct::io_lower_bound(shape, s),
            TileKind::Winograd(t) => iolb_core::winograd::io_lower_bound(shape, t, s),
        };
        q.max(1.0)
    };
    let (a, b) = (lower(target), lower(donor));
    let ratio = if a > b { a / b } else { b / a };
    ratio.is_finite() && ratio <= gap_bound
}

/// Speculative neighbors of a layer shape, each tagged with the
/// perturbation that produced it: the channel-halved/-doubled variants
/// (the axes along which CNN families actually vary between versions —
/// VGG-16 vs VGG-19, ResNet widths). Spatial extents and kernel geometry
/// stay fixed: those perturbations change the algorithm candidates
/// themselves and transfer poorly.
pub fn shape_perturbations(shape: &ConvShape) -> Vec<(ConvShape, PerturbationKind)> {
    let mut out: Vec<(ConvShape, PerturbationKind)> = Vec::new();
    let mut push = |candidate: ConvShape, kind: PerturbationKind| {
        if candidate != *shape
            && candidate.validate().is_ok()
            && !out.iter().any(|(c, _)| *c == candidate)
        {
            out.push((candidate, kind));
        }
    };
    push(ConvShape { cin: shape.cin * 2, ..*shape }, PerturbationKind::CinDoubled);
    if shape.cin.is_multiple_of(2) {
        push(ConvShape { cin: shape.cin / 2, ..*shape }, PerturbationKind::CinHalved);
    }
    push(ConvShape { cout: shape.cout * 2, ..*shape }, PerturbationKind::CoutDoubled);
    if shape.cout.is_multiple_of(2) {
        push(ConvShape { cout: shape.cout / 2, ..*shape }, PerturbationKind::CoutHalved);
    }
    out
}

/// Queue ordering key: tier rank first (batch before registered before
/// neighbor), then larger I/O-bound gap first, then fingerprint. The
/// float is compared through its IEEE bit pattern, which is
/// order-preserving for the non-negative finite gaps [`io_gap`]
/// produces.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct JobKey {
    rank: u8,
    gap_descending: std::cmp::Reverse<u64>,
    fingerprint: String,
}

/// What [`WorkQueue::push`] did with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The workload was new: the queue grew.
    Added,
    /// The workload was already pending at a *weaker* tier and has been
    /// lifted to the incoming job's tier (the queue did not grow).
    /// Reports the displaced tier and, when the displaced job was a
    /// neighbor, the perturbation kind whose prediction just came true.
    Promoted { from: JobTier, perturbation: Option<PerturbationKind> },
    /// The workload was already pending at an equal-or-better tier.
    AlreadyPending,
}

/// Deterministic tiered priority queue of pending jobs, deduplicated by
/// workload fingerprint.
#[derive(Debug, Default)]
pub struct WorkQueue {
    jobs: BTreeMap<JobKey, Job>,
    by_fingerprint: BTreeMap<String, JobKey>,
}

impl WorkQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn contains(&self, fingerprint: &str) -> bool {
        self.by_fingerprint.contains_key(fingerprint)
    }

    /// Every pending workload fingerprint with its tier, in fingerprint
    /// order. Registration snapshots this to avoid recomputing
    /// priorities for already-pending workloads.
    pub fn pending(&self) -> impl Iterator<Item = (&str, JobTier)> {
        self.by_fingerprint.iter().map(|(fp, key)| (fp.as_str(), self.jobs[key].tier))
    }

    /// Pending jobs belonging to a batch group.
    pub fn group_pending(&self, group: u64) -> usize {
        self.jobs.values().filter(|j| j.tier == JobTier::Batch { group }).count()
    }

    /// Enqueues a job at the given [`io_gap`] priority (computed by the
    /// caller so it can happen outside any service lock — the gap is a
    /// pure function of the workload). A workload already pending at a
    /// weaker tier is *promoted* to the incoming tier — a job someone is
    /// waiting on must never drain at (or be budget-dropped from)
    /// background priority just because speculation staged it first.
    pub fn push(&mut self, mut job: Job, gap: f64) -> PushOutcome {
        job.enqueued_at.get_or_insert_with(std::time::Instant::now);
        let fingerprint = job.fingerprint();
        if let Some(existing_key) = self.by_fingerprint.get(&fingerprint) {
            let existing = &self.jobs[existing_key];
            if existing.tier.rank() <= job.tier.rank() {
                return PushOutcome::AlreadyPending;
            }
            // Same fingerprint = same workload = same gap: keep the
            // key's gap, lift the tier.
            let old_key = existing_key.clone();
            let displaced = self.jobs.remove(&old_key).expect("pending job for indexed key");
            let from = displaced.tier;
            let perturbation = displaced.perturbation;
            let new_key = JobKey { rank: job.tier.rank(), ..old_key };
            self.by_fingerprint.insert(fingerprint, new_key.clone());
            self.jobs.insert(new_key, Job { tier: job.tier, perturbation: None, ..displaced });
            return PushOutcome::Promoted { from, perturbation };
        }
        let key = JobKey {
            rank: job.tier.rank(),
            gap_descending: std::cmp::Reverse(gap.to_bits()),
            fingerprint: fingerprint.clone(),
        };
        self.by_fingerprint.insert(fingerprint, key.clone());
        self.jobs.insert(key, job);
        PushOutcome::Added
    }

    /// Removes and returns the highest-priority job.
    pub fn pop_first(&mut self) -> Option<Job> {
        let (key, job) = self.jobs.pop_first()?;
        self.by_fingerprint.remove(&key.fingerprint);
        Some(job)
    }

    /// Removes and returns a pending job by workload fingerprint — the
    /// session claim path: a waiter tunes the jobs it needs itself,
    /// whatever tier (or group) staged them.
    pub fn take(&mut self, fingerprint: &str) -> Option<Job> {
        let key = self.by_fingerprint.remove(fingerprint)?;
        self.jobs.remove(&key)
    }

    /// Cancels a pending job by workload fingerprint. Returns whether a
    /// job was actually cancelled.
    pub fn remove(&mut self, fingerprint: &str) -> bool {
        self.take(fingerprint).is_some()
    }

    /// Drops every *droppable* pending job (budget exhaustion). Batch
    /// jobs survive: sessions are blocked on them and user work is never
    /// budget-limited. Returns how many jobs were dropped.
    pub fn clear_droppable(&mut self) -> usize {
        let doomed: Vec<JobKey> =
            self.jobs.iter().filter(|(_, j)| j.tier.droppable()).map(|(k, _)| k.clone()).collect();
        for key in &doomed {
            self.jobs.remove(key);
            self.by_fingerprint.remove(&key.fingerprint);
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cin: usize, tier: JobTier) -> Job {
        Job {
            shape: ConvShape::square(cin, 28, 32, 3, 1, 1),
            kind: TileKind::Direct,
            epilogue: Epilogue::None,
            device: DeviceSpec::v100(),
            tier,
            perturbation: if matches!(tier, JobTier::Neighbor) {
                Some(PerturbationKind::CinDoubled)
            } else {
                None
            },
            enqueued_at: None,
        }
    }

    fn push(q: &mut WorkQueue, j: Job) -> PushOutcome {
        let gap = io_gap(&j.shape, j.kind, &j.device);
        q.push(j, gap)
    }

    #[test]
    fn io_gap_is_at_least_one_and_feasible_shapes_exceed_it() {
        let d = DeviceSpec::v100();
        let gap = io_gap(&ConvShape::square(256, 56, 128, 3, 1, 1), TileKind::Direct, &d);
        assert!(gap >= 1.0 && gap.is_finite());
    }

    #[test]
    fn tiers_drain_batch_then_transfer_then_registered_then_neighbor() {
        let mut q = WorkQueue::new();
        assert_eq!(push(&mut q, job(64, JobTier::Neighbor)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(128, JobTier::Registered)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(16, JobTier::Transfer)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(32, JobTier::Batch { group: 1 })), PushOutcome::Added);
        assert_eq!(q.group_pending(1), 1);
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Batch { group: 1 });
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Transfer);
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Registered);
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Neighbor);
    }

    #[test]
    fn transfer_jobs_are_droppable_and_promotable() {
        assert!(JobTier::Transfer.droppable(), "nobody blocks on a provisional re-tune");
        let mut q = WorkQueue::new();
        push(&mut q, job(64, JobTier::Registered));
        assert_eq!(
            push(&mut q, job(64, JobTier::Transfer)),
            PushOutcome::Promoted { from: JobTier::Registered, perturbation: None }
        );
        assert_eq!(
            push(&mut q, job(64, JobTier::Batch { group: 4 })),
            PushOutcome::Promoted { from: JobTier::Transfer, perturbation: None }
        );
    }

    #[test]
    fn config_io_gap_bounds_the_gate() {
        let d = DeviceSpec::v100();
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let cfg = fast_config(&shape, TileKind::Direct, &d).unwrap();
        // The fast config's gap at its own shape matches io_gap.
        let own = config_io_gap(&shape, TileKind::Direct, &d, &cfg).unwrap();
        assert_eq!(own.to_bits(), io_gap(&shape, TileKind::Direct, &d).to_bits());
        // An invalid config (absurd staging buffer) has no gap.
        let broken = iolb_dataflow::config::ScheduleConfig { sb_bytes: 1024 * 1024 * 1024, ..cfg };
        assert!(config_io_gap(&shape, TileKind::Direct, &d, &broken).is_none());
    }

    #[test]
    fn transfer_admissibility_tightens_with_the_bound() {
        let d = DeviceSpec::v100();
        let donor = ConvShape::new(96, 64, 64, 24, 1, 1, 1, 0);
        let target = ConvShape::new(96, 54, 54, 24, 1, 1, 1, 0);
        // Donor configs land on the target through the divisor-lattice
        // projection — the same step the session serve path takes.
        let cfg = fast_config(&donor, TileKind::Direct, &d)
            .unwrap()
            .project_onto(&target, TileKind::Direct);
        // A generous bound admits the in-bucket neighbor; a bound of
        // exactly 1.0 demands the provable optimum and rejects it.
        assert!(transfer_admissible(&target, &donor, TileKind::Direct, &d, &cfg, 1e6));
        assert!(!transfer_admissible(&target, &donor, TileKind::Direct, &d, &cfg, 1.0));
        // A config that cannot validate on the target is never admissible.
        let broken = iolb_dataflow::config::ScheduleConfig { sb_bytes: 1024 * 1024 * 1024, ..cfg };
        assert!(!transfer_admissible(&target, &donor, TileKind::Direct, &d, &broken, 1e6));
        // Analytically distant shapes never merge even when the config
        // happens to validate on both.
        let far = ConvShape::new(96, 8, 8, 24, 1, 1, 1, 0);
        if config_io_gap(&far, TileKind::Direct, &d, &cfg).is_some() {
            assert!(!transfer_admissible(&far, &donor, TileKind::Direct, &d, &cfg, 1.5));
        }
    }

    #[test]
    fn queue_dedupes_by_fingerprint_and_cancels() {
        let mut q = WorkQueue::new();
        assert_eq!(push(&mut q, job(64, JobTier::Registered)), PushOutcome::Added);
        assert_eq!(
            push(&mut q, job(64, JobTier::Registered)),
            PushOutcome::AlreadyPending,
            "duplicate workload must not enqueue"
        );
        assert_eq!(q.len(), 1);
        let fp = job(64, JobTier::Registered).fingerprint();
        assert!(q.contains(&fp));
        assert!(q.remove(&fp));
        assert!(!q.remove(&fp));
        assert!(q.is_empty());
    }

    #[test]
    fn stronger_push_promotes_and_reports_the_displaced_tier() {
        let mut q = WorkQueue::new();
        // The neighbor of one layer aliases a later registered layer.
        assert_eq!(push(&mut q, job(64, JobTier::Neighbor)), PushOutcome::Added);
        assert_eq!(push(&mut q, job(128, JobTier::Registered)), PushOutcome::Added);
        assert_eq!(
            push(&mut q, job(64, JobTier::Registered)),
            PushOutcome::Promoted {
                from: JobTier::Neighbor,
                perturbation: Some(PerturbationKind::CinDoubled),
            },
            "a registered layer lifts its pending neighbor alias"
        );
        // A weaker push never demotes.
        assert_eq!(push(&mut q, job(64, JobTier::Neighbor)), PushOutcome::AlreadyPending);
        // A batch push lifts a registered job and reports where from.
        assert_eq!(
            push(&mut q, job(64, JobTier::Batch { group: 9 })),
            PushOutcome::Promoted { from: JobTier::Registered, perturbation: None }
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.group_pending(9), 1);
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Batch { group: 9 });
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Registered);
    }

    #[test]
    fn take_claims_by_fingerprint_across_tiers() {
        let mut q = WorkQueue::new();
        push(&mut q, job(64, JobTier::Neighbor));
        push(&mut q, job(128, JobTier::Batch { group: 2 }));
        let fp = job(64, JobTier::Neighbor).fingerprint();
        let taken = q.take(&fp).expect("pending job claimable by fingerprint");
        assert_eq!(taken.shape.cin, 64);
        assert!(q.take(&fp).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn budget_drop_spares_batch_jobs() {
        let mut q = WorkQueue::new();
        push(&mut q, job(64, JobTier::Registered));
        push(&mut q, job(32, JobTier::Neighbor));
        push(&mut q, job(128, JobTier::Batch { group: 3 }));
        assert_eq!(q.clear_droppable(), 2, "registered + neighbor jobs drop");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_first().unwrap().tier, JobTier::Batch { group: 3 });
    }

    #[test]
    fn drain_order_is_deterministic() {
        let build = || {
            let mut q = WorkQueue::new();
            for cin in [64, 32, 128, 16] {
                push(&mut q, job(cin, JobTier::Registered));
            }
            let mut order = Vec::new();
            while let Some(j) = q.pop_first() {
                order.push(j.fingerprint());
            }
            order
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn perturbations_are_valid_distinct_tagged_shapes() {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let neighbors = shape_perturbations(&shape);
        assert_eq!(neighbors.len(), 4);
        let mut kinds: Vec<PerturbationKind> = neighbors.iter().map(|(_, k)| *k).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 4, "every kind appears exactly once");
        for (n, _) in &neighbors {
            assert!(n.validate().is_ok());
            assert_ne!(*n, shape);
        }
        // Odd channel counts halve away.
        let odd = ConvShape::square(3, 28, 32, 3, 1, 1);
        assert!(shape_perturbations(&odd).iter().all(|(n, _)| n.cin != 1 || n.cout != 32));
    }

    #[test]
    fn perturbation_labels_round_trip() {
        for kind in PerturbationKind::ALL {
            assert_eq!(PerturbationKind::from_label(kind.label()), Some(kind));
            assert_eq!(PerturbationKind::ALL[kind.index()], kind);
        }
        assert_eq!(PerturbationKind::from_label("sideways"), None);
    }
}
