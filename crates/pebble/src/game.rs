//! The red-blue pebble game (paper §2.1, Hong & Kung 1981).
//!
//! Red pebbles = fast memory (at most `S` at any time); blue pebbles = slow
//! memory (unlimited). Legal moves:
//!
//! * **Load** — place a red pebble on a vertex holding a blue pebble;
//! * **Store** — place a blue pebble on a vertex holding a red pebble;
//! * **Compute** — place a red pebble on a non-input vertex all of whose
//!   predecessors hold red pebbles;
//! * **Free** — remove a red or blue pebble.
//!
//! The game starts with blue pebbles on every input and ends when every
//! output holds a blue pebble. The I/O cost `Q` is the number of loads
//! plus stores. Unlike the red-blue-white variant, *re-computation is
//! allowed* — the paper leans on this for Winograd (§8).

use crate::dag::{Dag, VertexId};

/// A single move of the game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Copy slow -> fast (costs 1 I/O).
    Load(VertexId),
    /// Copy fast -> slow (costs 1 I/O).
    Store(VertexId),
    /// Evaluate a vertex into fast memory (free).
    Compute(VertexId),
    /// Drop a red pebble (free).
    FreeRed(VertexId),
    /// Drop a blue pebble (free).
    FreeBlue(VertexId),
}

impl Move {
    /// I/O cost of this move.
    pub fn cost(&self) -> u64 {
        match self {
            Move::Load(_) | Move::Store(_) => 1,
            _ => 0,
        }
    }
}

/// Errors raised by illegal moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameError {
    /// Load target holds no blue pebble.
    LoadWithoutBlue(VertexId),
    /// Store source holds no red pebble.
    StoreWithoutRed(VertexId),
    /// Compute target is an input vertex (inputs are only ever loaded).
    ComputeInput(VertexId),
    /// Some predecessor lacks a red pebble.
    ComputeMissingPred { vertex: VertexId, missing: VertexId },
    /// Fast memory full: placing a red pebble would exceed `S`.
    RedCapacityExceeded(VertexId),
    /// Freeing a pebble that is not there.
    FreeMissing(VertexId),
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameError::LoadWithoutBlue(v) => write!(f, "load of {v}: no blue pebble"),
            GameError::StoreWithoutRed(v) => write!(f, "store of {v}: no red pebble"),
            GameError::ComputeInput(v) => write!(f, "compute of input vertex {v}"),
            GameError::ComputeMissingPred { vertex, missing } => {
                write!(f, "compute of {vertex}: predecessor {missing} not red")
            }
            GameError::RedCapacityExceeded(v) => {
                write!(f, "placing red on {v} exceeds capacity S")
            }
            GameError::FreeMissing(v) => write!(f, "free of {v}: pebble absent"),
        }
    }
}

impl std::error::Error for GameError {}

/// Live game state.
#[derive(Debug, Clone)]
pub struct Game<'a> {
    dag: &'a Dag,
    /// Fast-memory capacity `S`.
    pub s: usize,
    red: Vec<bool>,
    blue: Vec<bool>,
    red_count: usize,
    loads: u64,
    stores: u64,
}

impl<'a> Game<'a> {
    /// Fresh game: blue pebbles on all inputs, no red pebbles.
    pub fn new(dag: &'a Dag, s: usize) -> Self {
        assert!(s >= 1, "need at least one red pebble");
        let mut blue = vec![false; dag.len()];
        for v in dag.inputs() {
            blue[v as usize] = true;
        }
        Self { dag, s, red: vec![false; dag.len()], blue, red_count: 0, loads: 0, stores: 0 }
    }

    /// Whether `v` currently holds a red pebble.
    pub fn is_red(&self, v: VertexId) -> bool {
        self.red[v as usize]
    }

    /// Whether `v` currently holds a blue pebble.
    pub fn is_blue(&self, v: VertexId) -> bool {
        self.blue[v as usize]
    }

    /// Number of red pebbles in use.
    pub fn red_count(&self) -> usize {
        self.red_count
    }

    /// Loads so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores so far.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total I/O `Q` so far.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }

    /// Applies one move, enforcing legality.
    pub fn apply(&mut self, m: Move) -> Result<(), GameError> {
        match m {
            Move::Load(v) => {
                if !self.blue[v as usize] {
                    return Err(GameError::LoadWithoutBlue(v));
                }
                if !self.red[v as usize] {
                    if self.red_count >= self.s {
                        return Err(GameError::RedCapacityExceeded(v));
                    }
                    self.red[v as usize] = true;
                    self.red_count += 1;
                }
                self.loads += 1;
                Ok(())
            }
            Move::Store(v) => {
                if !self.red[v as usize] {
                    return Err(GameError::StoreWithoutRed(v));
                }
                self.blue[v as usize] = true;
                self.stores += 1;
                Ok(())
            }
            Move::Compute(v) => {
                if self.dag.preds(v).is_empty() {
                    return Err(GameError::ComputeInput(v));
                }
                for &p in self.dag.preds(v) {
                    if !self.red[p as usize] {
                        return Err(GameError::ComputeMissingPred { vertex: v, missing: p });
                    }
                }
                if !self.red[v as usize] {
                    if self.red_count >= self.s {
                        return Err(GameError::RedCapacityExceeded(v));
                    }
                    self.red[v as usize] = true;
                    self.red_count += 1;
                }
                Ok(())
            }
            Move::FreeRed(v) => {
                if !self.red[v as usize] {
                    return Err(GameError::FreeMissing(v));
                }
                self.red[v as usize] = false;
                self.red_count -= 1;
                Ok(())
            }
            Move::FreeBlue(v) => {
                if !self.blue[v as usize] {
                    return Err(GameError::FreeMissing(v));
                }
                self.blue[v as usize] = false;
                Ok(())
            }
        }
    }

    /// True when every output vertex holds a blue pebble — the game's goal.
    pub fn is_complete(&self) -> bool {
        self.dag.outputs().iter().all(|&v| self.blue[v as usize])
    }
}

/// Replays a whole trace on a fresh game; returns the final game or the
/// first illegal move's error with its index.
pub fn replay<'a>(dag: &'a Dag, s: usize, trace: &[Move]) -> Result<Game<'a>, (usize, GameError)> {
    let mut game = Game::new(dag, s);
    for (i, &m) in trace.iter().enumerate() {
        game.apply(m).map_err(|e| (i, e))?;
    }
    Ok(game)
}

/// Replays and additionally demands completion; returns total I/O `Q`.
pub fn replay_complete(dag: &Dag, s: usize, trace: &[Move]) -> Result<u64, String> {
    let game = replay(dag, s, trace).map_err(|(i, e)| format!("move {i}: {e}"))?;
    if !game.is_complete() {
        return Err("trace does not blue-pebble all outputs".into());
    }
    Ok(game.io())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0,1 inputs -> 2 -> 3 chain.
    fn chain() -> Dag {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        let c = d.add_vertex(0);
        let e = d.add_vertex(0);
        d.add_edge(a, c);
        d.add_edge(b, c);
        d.add_edge(c, e);
        d
    }

    #[test]
    fn minimal_legal_playthrough() {
        let d = chain();
        let trace = [
            Move::Load(0),
            Move::Load(1),
            Move::Compute(2),
            Move::FreeRed(0),
            Move::FreeRed(1),
            Move::Compute(3),
            Move::Store(3),
        ];
        let q = replay_complete(&d, 3, &trace).unwrap();
        assert_eq!(q, 3); // two loads + one store
    }

    #[test]
    fn capacity_enforced() {
        let d = chain();
        let mut g = Game::new(&d, 1);
        g.apply(Move::Load(0)).unwrap();
        assert_eq!(g.apply(Move::Load(1)), Err(GameError::RedCapacityExceeded(1)));
    }

    #[test]
    fn compute_requires_red_predecessors() {
        let d = chain();
        let mut g = Game::new(&d, 3);
        g.apply(Move::Load(0)).unwrap();
        assert_eq!(
            g.apply(Move::Compute(2)),
            Err(GameError::ComputeMissingPred { vertex: 2, missing: 1 })
        );
    }

    #[test]
    fn inputs_cannot_be_computed() {
        let d = chain();
        let mut g = Game::new(&d, 3);
        assert_eq!(g.apply(Move::Compute(0)), Err(GameError::ComputeInput(0)));
    }

    #[test]
    fn load_requires_blue() {
        let d = chain();
        let mut g = Game::new(&d, 3);
        assert_eq!(g.apply(Move::Load(2)), Err(GameError::LoadWithoutBlue(2)));
    }

    #[test]
    fn store_requires_red() {
        let d = chain();
        let mut g = Game::new(&d, 3);
        assert_eq!(g.apply(Move::Store(2)), Err(GameError::StoreWithoutRed(2)));
    }

    #[test]
    fn free_requires_presence() {
        let d = chain();
        let mut g = Game::new(&d, 3);
        assert_eq!(g.apply(Move::FreeRed(0)), Err(GameError::FreeMissing(0)));
        assert_eq!(g.apply(Move::FreeBlue(2)), Err(GameError::FreeMissing(2)));
        // Inputs start blue; freeing their blue is legal (if unwise).
        assert!(g.apply(Move::FreeBlue(0)).is_ok());
    }

    #[test]
    fn incomplete_trace_rejected() {
        let d = chain();
        let trace = [Move::Load(0), Move::Load(1), Move::Compute(2)];
        assert!(replay_complete(&d, 3, &trace).is_err());
    }

    #[test]
    fn recomputation_is_legal() {
        // Compute 2, drop it, recompute it — allowed (unlike red-blue-white).
        let d = chain();
        let trace = [
            Move::Load(0),
            Move::Load(1),
            Move::Compute(2),
            Move::FreeRed(2),
            Move::Compute(2),
            Move::FreeRed(0),
            Move::FreeRed(1),
            Move::Compute(3),
            Move::Store(3),
        ];
        let q = replay_complete(&d, 3, &trace).unwrap();
        assert_eq!(q, 3);
    }

    #[test]
    fn reload_after_store_counts_io() {
        let d = chain();
        // Store 2, evict, reload: 2 extra I/Os versus keeping it red.
        // (S = 3: vertex 2 has in-degree 2, so computing it needs both
        // predecessors red plus a free slot.)
        let trace = [
            Move::Load(0),
            Move::Load(1),
            Move::Compute(2),
            Move::Store(2),
            Move::FreeRed(2),
            Move::FreeRed(0),
            Move::FreeRed(1),
            Move::Load(2),
            Move::Compute(3),
            Move::Store(3),
        ];
        let q = replay_complete(&d, 3, &trace).unwrap();
        assert_eq!(q, 5);
    }

    #[test]
    fn io_monotonically_counts_loads_and_stores() {
        let d = chain();
        let mut g = Game::new(&d, 4);
        assert_eq!(g.io(), 0);
        g.apply(Move::Load(0)).unwrap();
        assert_eq!((g.loads(), g.stores(), g.io()), (1, 0, 1));
        g.apply(Move::Load(1)).unwrap();
        g.apply(Move::Compute(2)).unwrap();
        g.apply(Move::Store(2)).unwrap();
        assert_eq!((g.loads(), g.stores(), g.io()), (2, 1, 3));
    }
}
