//! The daemon wire protocol: length-prefixed, versioned frames of
//! flat-JSON lines.
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by a UTF-8 payload of newline-separated flat JSON objects —
//! the exact object dialect the record store's JSONL codec defines
//! (string keys, number/string values, canonical writer), parsed by the
//! same [`iolb_records::jsonl`] parser, so the socket protocol and the
//! store files cannot drift apart. The first line of every payload is a
//! header carrying the protocol version (`"v"`) and the message type;
//! list-shaped messages (submit requests, batch results) follow with
//! one object per element.
//!
//! The decoder is written for hostile input: truncated frames, payloads
//! above [`MAX_FRAME_BYTES`], foreign versions, non-UTF-8 bytes and
//! malformed objects are all **typed errors** ([`WireError`]), never
//! panics — pinned by `crates/service/tests/proptest_wire.rs`.
//!
//! Six request kinds exist, mirroring the [`crate::session::Backend`]
//! trait plus replication and lifecycle control:
//!
//! | request | response |
//! |---------|----------|
//! | `Submit { device, requests }` | `Submitted { session, unique }` |
//! | `Wait { session }` | `Results { results }` |
//! | `Sync` | `Synced { persisted, total }` |
//! | `Stats` | `Stats { snapshot, metrics }` |
//! | `Pull` | `State { store }` |
//! | `Shutdown` | `Bye` |
//!
//! plus `Error { message }`, which the daemon may answer to anything.
//!
//! `Pull`/`State` is the anti-entropy path: a peer daemon pulls another
//! daemon's full in-memory state — every record (serialized with the
//! record store's own per-line codec, [`iolb_records::jsonl`]), every
//! LRU stamp, and the logical clock — and folds it in with
//! [`ShardedStore::absorb`], the CRDT-style union merge. The normative
//! protocol spec lives in `docs/PROTOCOL.md`; CI checks that document's
//! frame constants against this file.

use crate::service::{ServeResult, ServeSource, ServiceSnapshot};
use crate::session::TuneRequest;
use crate::shard::ShardedStore;
use crate::telemetry::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot};
use iolb_autotune::plan::BatchRequest;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_records::jsonl::{escape, parse_flat_object, Value};
use iolb_tensor::layout::Layout;
use std::io::{Read, Write};

/// Protocol version stamped into every payload header. Foreign versions
/// are rejected whole (same stance as the record schema and the shard
/// manifest: re-issue the request from a matching build, never guess at
/// field semantics). Version 2 added the `Pull`/`State` anti-entropy
/// messages; version 3 extended the `Stats` response with the metrics
/// registry (counters, gauges, latency-histogram snapshots); version 4
/// added the `anchor` serve source and the `retune` result flag
/// (anchored transfer serving); version 5 added fused operator chains —
/// submit request lines carry an optional `epi` epilogue tag and every
/// serve result carries a `fused` flag marking gate-approved fused
/// chains. Version-1 through version-4 peers alike are rejected with
/// [`WireError::ForeignVersion`] rather than served a grammar they
/// cannot fully speak.
pub const WIRE_VERSION: u32 = 5;

/// Hard ceiling on a frame payload. A VGG-scale submit is a few KiB;
/// anything claiming megabytes is hostile or corrupt and is rejected
/// *before* the payload is allocated or read.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed mid-operation.
    Io(std::io::Error),
    /// The stream ended before a full frame arrived.
    Truncated { expected: usize, got: usize },
    /// The peer closed the connection where a frame was required.
    ConnectionClosed,
    /// The frame header claims a payload above [`MAX_FRAME_BYTES`].
    Oversized { len: usize },
    /// The payload header carries a protocol version this build does not
    /// speak.
    ForeignVersion { got: u64 },
    /// The payload is not valid UTF-8 / flat JSON / a known message.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} byte(s), got {got}")
            }
            WireError::ConnectionClosed => write!(f, "connection closed before a response"),
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} byte(s) exceeds the {MAX_FRAME_BYTES} cap")
            }
            WireError::ForeignVersion { got } => {
                write!(f, "foreign wire version {got} (this build speaks {WIRE_VERSION})")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a batch of tuning requests on a device (one session).
    Submit { device: DeviceSpec, requests: Vec<TuneRequest> },
    /// Block until a previously submitted session resolves.
    Wait { session: u64 },
    /// Flush the daemon's shard directory now.
    Sync,
    /// Snapshot the daemon's counters.
    Stats,
    /// Replicate: send me your full in-memory store state (records, LRU
    /// stamps, logical clock). The anti-entropy request peers exchange.
    Pull,
    /// Persist and exit.
    Shutdown,
}

/// A daemon-to-client message. The stats snapshot is boxed: it is by
/// far the largest variant and would otherwise bloat every `Response`
/// on the stack (clippy's `large_enum_variant`).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Submitted {
        session: u64,
        unique: usize,
    },
    Results {
        results: Vec<Option<ServeResult>>,
    },
    Synced {
        persisted: bool,
        total: usize,
    },
    /// Counter snapshot plus the metrics registry (v3: counters, gauges
    /// and latency-histogram snapshots ride beside the TSV sidecar).
    Stats {
        snapshot: Box<ServiceSnapshot>,
        metrics: MetricsSnapshot,
    },
    /// Full store state answering a [`Request::Pull`]: the receiver
    /// [`ShardedStore::absorb`]s it (union of records, per-fingerprint
    /// max stamps, max clock), so replication converges whatever the
    /// exchange order.
    State {
        store: Box<ShardedStore>,
    },
    Bye,
    Error {
        message: String,
    },
}

// ---------------------------------------------------------------- frames

/// Reads exactly `buf.len()` bytes unless the stream ends first; returns
/// how many bytes actually arrived.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

/// Writes one frame (length prefix + payload). Rejects oversized
/// payloads on the way *out* too, so a misbehaving caller cannot emit a
/// frame no peer will accept.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len: payload.len() });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); a stream ending *inside* a frame is
/// [`WireError::Truncated`], and a length prefix above the cap is
/// rejected before any payload byte is read or allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let got = read_full(r, &mut len_buf)?;
    if got == 0 {
        return Ok(None);
    }
    if got < 4 {
        return Err(WireError::Truncated { expected: 4, got });
    }
    read_payload(r, u32::from_be_bytes(len_buf) as usize).map(Some)
}

/// Reads a frame's payload once its 4-byte length prefix has been
/// consumed (the daemon reads the prefix itself, resumably, so idle
/// ticks between frames never desynchronize the stream). Enforces the
/// [`MAX_FRAME_BYTES`] cap *before* allocating.
pub(crate) fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    read_payload_into(r, len, &mut payload)?;
    Ok(payload)
}

/// [`read_payload`] into a caller-owned buffer, the hot-path variant:
/// a connection serving many frames reuses one buffer's capacity
/// instead of allocating per frame (capacity is bounded by
/// [`MAX_FRAME_BYTES`], and the cap is still enforced *before* the
/// buffer grows).
pub(crate) fn read_payload_into(
    r: &mut impl Read,
    len: usize,
    buf: &mut Vec<u8>,
) -> Result<(), WireError> {
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len });
    }
    buf.clear();
    buf.resize(len, 0);
    let got = read_full(r, buf)?;
    if got < len {
        return Err(WireError::Truncated { expected: len, got });
    }
    Ok(())
}

/// Decodes a request from a raw frame payload (UTF-8 check included).
pub(crate) fn decode_request_payload(payload: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| WireError::Malformed("frame payload is not UTF-8".into()))?;
    decode_request(text)
}

// ------------------------------------------------------------- payloads

/// Field accessor over one parsed flat object, converting the record
/// codec's string-reason errors into [`WireError::Malformed`].
struct Fields(Vec<(String, Value)>);

impl Fields {
    fn parse(line: &str) -> Result<Self, WireError> {
        parse_flat_object(line).map(Self).map_err(WireError::Malformed)
    }

    fn get(&self, key: &str) -> Result<&Value, WireError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| WireError::Malformed(format!("missing field {key:?}")))
    }

    fn str(&self, key: &str) -> Result<&str, WireError> {
        self.get(key)?.as_str(key).map_err(WireError::Malformed)
    }

    fn u64(&self, key: &str) -> Result<u64, WireError> {
        self.get(key)?.as_u64(key).map_err(WireError::Malformed)
    }

    fn usize(&self, key: &str) -> Result<usize, WireError> {
        self.get(key)?.as_usize(key).map_err(WireError::Malformed)
    }

    fn u32(&self, key: &str) -> Result<u32, WireError> {
        u32::try_from(self.u64(key)?)
            .map_err(|_| WireError::Malformed(format!("field {key:?} out of range")))
    }

    fn finite_f64(&self, key: &str) -> Result<f64, WireError> {
        let v = self.get(key)?.as_f64(key).map_err(WireError::Malformed)?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::Malformed(format!("field {key:?} must be finite, got {v}")))
        }
    }
}

fn header(kind: &str) -> String {
    format!("{{\"v\":{WIRE_VERSION},\"type\":\"{kind}\"}}")
}

/// Checks the header's version and returns the message type tag.
fn parse_header(fields: &Fields) -> Result<String, WireError> {
    let v = fields.u64("v")?;
    if v != u64::from(WIRE_VERSION) {
        return Err(WireError::ForeignVersion { got: v });
    }
    Ok(fields.str("type")?.to_string())
}

fn encode_device(d: &DeviceSpec) -> String {
    format!(
        concat!(
            "{{\"dev\":\"{}\",\"sms\":{},\"smem\":{},\"smem_block\":{},\"threads_sm\":{},",
            "\"threads_block\":{},\"blocks_sm\":{},\"clock_ghz\":{},\"lanes\":{},",
            "\"dram_gbps\":{},\"txn\":{},\"launch_us\":{},\"eff\":{}}}"
        ),
        escape(d.name),
        d.num_sms,
        d.smem_per_sm,
        d.max_smem_per_block,
        d.max_threads_per_sm,
        d.max_threads_per_block,
        d.max_blocks_per_sm,
        d.clock_ghz,
        d.fma_lanes_per_sm,
        d.dram_gbps,
        d.transaction_bytes,
        d.launch_overhead_us,
        d.compute_efficiency,
    )
}

/// Decodes a device line. The preset name resolves the `&'static str`
/// device name; every numeric field then comes from the wire, so a
/// client with a customised preset (e.g. a clamped `smem_per_sm`) is
/// served faithfully. Unknown preset names are a typed error — a record
/// tuned for a device this build cannot even name must not be fabricated.
fn decode_device(line: &str) -> Result<DeviceSpec, WireError> {
    let fields = Fields::parse(line)?;
    let name = fields.str("dev")?;
    let preset = DeviceSpec::all()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| WireError::Malformed(format!("unknown device preset {name:?}")))?;
    Ok(DeviceSpec {
        name: preset.name,
        num_sms: fields.u32("sms")?,
        smem_per_sm: fields.u32("smem")?,
        max_smem_per_block: fields.u32("smem_block")?,
        max_threads_per_sm: fields.u32("threads_sm")?,
        max_threads_per_block: fields.u32("threads_block")?,
        max_blocks_per_sm: fields.u32("blocks_sm")?,
        clock_ghz: fields.finite_f64("clock_ghz")?,
        fma_lanes_per_sm: fields.u32("lanes")?,
        dram_gbps: fields.finite_f64("dram_gbps")?,
        transaction_bytes: fields.u32("txn")?,
        launch_overhead_us: fields.finite_f64("launch_us")?,
        compute_efficiency: fields.finite_f64("eff")?,
    })
}

fn encode_result(result: &Option<ServeResult>) -> String {
    match result {
        None => "{\"ok\":0}".to_string(),
        Some(r) => {
            let (src, cancelled, retune) = match r.source {
                ServeSource::ShardHit => ("hit", 0, 0),
                ServeSource::Stolen => ("stolen", 0, 0),
                ServeSource::Inline { cancelled_speculative } => {
                    ("inline", usize::from(cancelled_speculative), 0)
                }
                ServeSource::Anchored { retune } => ("anchor", 0, usize::from(retune)),
            };
            let c = &r.config;
            format!(
                concat!(
                    "{{\"ok\":1,\"src\":\"{}\",\"cancel\":{},\"retune\":{},\"fused\":{},",
                    "\"fresh\":{},\"cached\":{},",
                    "\"cost_ms\":{},\"x\":{},\"y\":{},\"z\":{},\"nxt\":{},\"nyt\":{},",
                    "\"nzt\":{},\"sb\":{},\"layout\":\"{}\"}}"
                ),
                src,
                cancelled,
                retune,
                usize::from(r.fused),
                r.fresh_measurements,
                r.cache_hits,
                r.cost_ms,
                c.x,
                c.y,
                c.z,
                c.nxt,
                c.nyt,
                c.nzt,
                c.sb_bytes,
                c.layout.name(),
            )
        }
    }
}

fn decode_result(line: &str) -> Result<Option<ServeResult>, WireError> {
    let fields = Fields::parse(line)?;
    if fields.u64("ok")? == 0 {
        return Ok(None);
    }
    let source = match fields.str("src")? {
        "hit" => ServeSource::ShardHit,
        "stolen" => ServeSource::Stolen,
        "inline" => ServeSource::Inline { cancelled_speculative: fields.u64("cancel")? != 0 },
        "anchor" => ServeSource::Anchored { retune: fields.u64("retune")? != 0 },
        other => return Err(WireError::Malformed(format!("unknown serve source {other:?}"))),
    };
    let layout: Layout = fields.str("layout")?.parse().map_err(WireError::Malformed)?;
    let config = ScheduleConfig {
        x: fields.usize("x")?,
        y: fields.usize("y")?,
        z: fields.usize("z")?,
        nxt: fields.usize("nxt")?,
        nyt: fields.usize("nyt")?,
        nzt: fields.usize("nzt")?,
        sb_bytes: fields.u32("sb")?,
        layout,
    };
    Ok(Some(ServeResult {
        config,
        cost_ms: fields.finite_f64("cost_ms")?,
        source,
        fresh_measurements: fields.usize("fresh")?,
        cache_hits: fields.usize("cached")?,
        fused: fields.u64("fused")? != 0,
    }))
}

/// Serializes a request payload (frame body, no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = String::new();
    encode_request_into(req, &mut out);
    out.into_bytes()
}

/// [`encode_request`] appending to a caller-owned string — the
/// hot-path variant that lets a connection reuse one encode buffer
/// across requests (the caller clears it).
pub fn encode_request_into(req: &Request, out: &mut String) {
    match req {
        Request::Submit { device, requests } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"submit\",\"n\":{}}}\n",
                requests.len()
            ));
            out.push_str(&encode_device(device));
            out.push('\n');
            for r in requests {
                out.push_str(
                    &BatchRequest { shape: r.shape, kind: r.kind, epilogue: r.epilogue }
                        .to_wire_line(),
                );
                out.push('\n');
            }
        }
        Request::Wait { session } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"wait\",\"session\":{session}}}\n"
            ));
        }
        Request::Sync => {
            out.push_str(&header("sync"));
            out.push('\n');
        }
        Request::Stats => {
            out.push_str(&header("stats"));
            out.push('\n');
        }
        Request::Pull => {
            out.push_str(&header("pull"));
            out.push('\n');
        }
        Request::Shutdown => {
            out.push_str(&header("shutdown"));
            out.push('\n');
        }
    }
}

/// Parses a request payload. Never panics: every malformation is a
/// typed [`WireError`].
pub fn decode_request(payload: &str) -> Result<Request, WireError> {
    let mut lines = payload.lines().filter(|l| !l.trim().is_empty());
    let head =
        Fields::parse(lines.next().ok_or_else(|| WireError::Malformed("empty frame".into()))?)?;
    let kind = parse_header(&head)?;
    let req = match kind.as_str() {
        "submit" => {
            let n = head.usize("n")?;
            let device = decode_device(lines.next().ok_or_else(|| {
                WireError::Malformed("submit frame is missing its device line".into())
            })?)?;
            let mut requests = Vec::new();
            for i in 0..n {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("submit frame ends after {i} of {n} request(s)"))
                })?;
                let br = BatchRequest::from_wire_line(line).map_err(WireError::Malformed)?;
                requests.push(TuneRequest {
                    shape: br.shape,
                    kind: br.kind,
                    epilogue: br.epilogue,
                });
            }
            Request::Submit { device, requests }
        }
        "wait" => Request::Wait { session: head.u64("session")? },
        "sync" => Request::Sync,
        "stats" => Request::Stats,
        "pull" => Request::Pull,
        "shutdown" => Request::Shutdown,
        other => return Err(WireError::Malformed(format!("unknown request type {other:?}"))),
    };
    if lines.next().is_some() {
        return Err(WireError::Malformed("trailing lines after message".into()));
    }
    Ok(req)
}

/// Serializes a response payload (frame body, no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = String::new();
    encode_response_into(resp, &mut out);
    out.into_bytes()
}

/// [`encode_response`] appending to a caller-owned string (see
/// [`encode_request_into`]).
pub fn encode_response_into(resp: &Response, out: &mut String) {
    match resp {
        Response::Submitted { session, unique } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"submitted\",\"session\":{session},\"unique\":{unique}}}\n"
            ));
        }
        Response::Results { results } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"results\",\"n\":{}}}\n",
                results.len()
            ));
            for r in results {
                out.push_str(&encode_result(r));
                out.push('\n');
            }
        }
        Response::Synced { persisted, total } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"synced\",\"persisted\":{},\"total\":{total}}}\n",
                u8::from(*persisted)
            ));
        }
        Response::Stats { snapshot, metrics } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"stats\",\"tsv\":\"{}\",\"c\":{},\"g\":{},\"h\":{}}}\n",
                escape(&snapshot.to_tsv()),
                metrics.counters.len(),
                metrics.gauges.len(),
                metrics.histograms.len(),
            ));
            for (name, value) in metrics.counters.iter().chain(metrics.gauges.iter()) {
                out.push_str(&format!("{{\"k\":\"{}\",\"val\":{value}}}\n", escape(name)));
            }
            for h in &metrics.histograms {
                let buckets: Vec<String> =
                    h.histogram.buckets().iter().map(u64::to_string).collect();
                out.push_str(&format!(
                    "{{\"k\":\"{}\",\"sum\":{},\"buckets\":\"{}\"}}\n",
                    escape(&h.name),
                    h.histogram.sum(),
                    buckets.join(","),
                ));
            }
        }
        Response::State { store } => {
            let records: Vec<&iolb_records::TuningRecord> = store
                .shards()
                .flat_map(|(_, shard)| shard.entries())
                .flat_map(|(_, r)| r)
                .collect();
            let hits: Vec<(&str, u64)> = store.hit_stamps().collect();
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"state\",\"n\":{},\"h\":{},\"clock\":{}}}\n",
                records.len(),
                hits.len(),
                store.clock()
            ));
            // One line per record, in the record store's own canonical
            // per-line codec — the wire state and the shard files are
            // the same dialect by construction.
            for rec in records {
                out.push_str(&iolb_records::jsonl::encode(rec));
                out.push('\n');
            }
            for (fp, stamp) in hits {
                out.push_str(&format!("{{\"fp\":\"{}\",\"stamp\":{stamp}}}\n", escape(fp)));
            }
        }
        Response::Bye => {
            out.push_str(&header("bye"));
            out.push('\n');
        }
        Response::Error { message } => {
            out.push_str(&format!(
                "{{\"v\":{WIRE_VERSION},\"type\":\"error\",\"msg\":\"{}\"}}\n",
                escape(message)
            ));
        }
    }
}

/// Parses a response payload. Never panics on hostile input.
pub fn decode_response(payload: &str) -> Result<Response, WireError> {
    let mut lines = payload.lines().filter(|l| !l.trim().is_empty());
    let head =
        Fields::parse(lines.next().ok_or_else(|| WireError::Malformed("empty frame".into()))?)?;
    let kind = parse_header(&head)?;
    let resp = match kind.as_str() {
        "submitted" => {
            Response::Submitted { session: head.u64("session")?, unique: head.usize("unique")? }
        }
        "results" => {
            let n = head.usize("n")?;
            let mut results = Vec::new();
            for i in 0..n {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("results frame ends after {i} of {n} result(s)"))
                })?;
                results.push(decode_result(line)?);
            }
            Response::Results { results }
        }
        "synced" => {
            Response::Synced { persisted: head.u64("persisted")? != 0, total: head.usize("total")? }
        }
        "stats" => {
            let snapshot = ServiceSnapshot::from_tsv(head.str("tsv")?).ok_or_else(|| {
                WireError::Malformed("stats payload carries a foreign sidecar version".into())
            })?;
            let (c, g, h) = (head.usize("c")?, head.usize("g")?, head.usize("h")?);
            let mut metrics = MetricsSnapshot::default();
            let mut scalar_line = |i: usize, total: usize| {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("stats frame ends after {i} of {total} metric(s)"))
                })?;
                let fields = Fields::parse(line)?;
                Ok::<(String, u64), WireError>((fields.str("k")?.to_string(), fields.u64("val")?))
            };
            for i in 0..c {
                metrics.counters.push(scalar_line(i, c)?);
            }
            for i in 0..g {
                metrics.gauges.push(scalar_line(i, g)?);
            }
            for i in 0..h {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("stats frame ends after {i} of {h} histogram(s)"))
                })?;
                let fields = Fields::parse(line)?;
                let buckets: Vec<u64> = fields
                    .str("buckets")?
                    .split(',')
                    .map(|b| {
                        b.parse::<u64>().map_err(|_| {
                            WireError::Malformed(format!("non-numeric histogram bucket {b:?}"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let histogram = LatencyHistogram::from_parts(fields.u64("sum")?, &buckets)
                    .map_err(WireError::Malformed)?;
                metrics
                    .histograms
                    .push(HistogramSnapshot { name: fields.str("k")?.to_string(), histogram });
            }
            Response::Stats { snapshot: Box::new(snapshot), metrics }
        }
        "state" => {
            let n = head.usize("n")?;
            let h = head.usize("h")?;
            let mut store = ShardedStore::new();
            for i in 0..n {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("state frame ends after {i} of {n} record(s)"))
                })?;
                store.insert(iolb_records::jsonl::decode(line).map_err(WireError::Malformed)?);
            }
            for i in 0..h {
                let line = lines.next().ok_or_else(|| {
                    WireError::Malformed(format!("state frame ends after {i} of {h} stamp(s)"))
                })?;
                let fields = Fields::parse(line)?;
                store.restore_hit(fields.str("fp")?, fields.u64("stamp")?);
            }
            store.restore_clock(head.u64("clock")?);
            Response::State { store: Box::new(store) }
        }
        "bye" => Response::Bye,
        "error" => Response::Error { message: head.str("msg")?.to_string() },
        other => return Err(WireError::Malformed(format!("unknown response type {other:?}"))),
    };
    if lines.next().is_some() {
        return Err(WireError::Malformed("trailing lines after message".into()));
    }
    Ok(resp)
}

// ------------------------------------------------------ framed messages

/// Writes one framed request.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write_frame(w, &encode_request(req))
}

/// Reads one framed request; `Ok(None)` is a clean client disconnect.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    decode_request_payload(&payload).map(Some)
}

/// Writes one framed response.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    write_frame(w, &encode_response(resp))
}

/// Reads one framed response. A response is always owed, so a clean
/// close here is [`WireError::ConnectionClosed`].
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    let mut scratch = Scratch::default();
    read_response_buffered(r, &mut scratch)
}

/// Reusable per-connection encode/decode buffers: one payload buffer
/// for inbound frames, one string for outbound encoding. A connection
/// that serves many frames touches the allocator once per *high-water
/// mark* instead of twice per request — the daemon hot-path trim
/// (capacity stays bounded by [`MAX_FRAME_BYTES`]).
#[derive(Default)]
pub struct Scratch {
    /// Inbound frame payload buffer.
    pub(crate) payload: Vec<u8>,
    /// Outbound encode buffer.
    pub(crate) encode: String,
    /// Outbound frame staging: length prefix + payload assembled here so
    /// the whole frame leaves in one `write` syscall instead of two.
    pub(crate) frame: Vec<u8>,
}

/// Stages `scratch.encode` as one contiguous frame (prefix + payload)
/// and writes it with a single syscall. [`write_frame`] issues two
/// writes per frame; on the busy loop that doubles syscalls and, on
/// TCP, can split a frame across packets even with `TCP_NODELAY`.
fn write_encoded_frame(w: &mut impl Write, scratch: &mut Scratch) -> Result<(), WireError> {
    let payload = scratch.encode.as_bytes();
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len: payload.len() });
    }
    scratch.frame.clear();
    scratch.frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    scratch.frame.extend_from_slice(payload);
    w.write_all(&scratch.frame)?;
    w.flush()?;
    Ok(())
}

/// Writes one framed request through the connection's [`Scratch`].
pub fn write_request_buffered(
    w: &mut impl Write,
    req: &Request,
    scratch: &mut Scratch,
) -> Result<(), WireError> {
    scratch.encode.clear();
    encode_request_into(req, &mut scratch.encode);
    write_encoded_frame(w, scratch)
}

/// Writes one framed response through the connection's [`Scratch`].
pub fn write_response_buffered(
    w: &mut impl Write,
    resp: &Response,
    scratch: &mut Scratch,
) -> Result<(), WireError> {
    scratch.encode.clear();
    encode_response_into(resp, &mut scratch.encode);
    write_encoded_frame(w, scratch)
}

/// Reads one framed response through the connection's [`Scratch`].
pub fn read_response_buffered(
    r: &mut impl Read,
    scratch: &mut Scratch,
) -> Result<Response, WireError> {
    let mut len_buf = [0u8; 4];
    let got = read_full(r, &mut len_buf)?;
    if got == 0 {
        return Err(WireError::ConnectionClosed);
    }
    if got < 4 {
        return Err(WireError::Truncated { expected: 4, got });
    }
    read_payload_into(r, u32::from_be_bytes(len_buf) as usize, &mut scratch.payload)?;
    let text = std::str::from_utf8(&scratch.payload)
        .map_err(|_| WireError::Malformed("frame payload is not UTF-8".into()))?;
    decode_response(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::{ConvShape, WinogradTile};

    fn sample_requests() -> Vec<TuneRequest> {
        vec![
            TuneRequest::bare(ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0), TileKind::Direct),
            TuneRequest::bare(
                ConvShape::square(16, 14, 16, 3, 1, 1),
                TileKind::Winograd(WinogradTile::F4X3),
            ),
            TuneRequest::fused(
                ConvShape::square(16, 28, 32, 3, 1, 1),
                TileKind::Direct,
                iolb_core::Epilogue::Relu,
            ),
            TuneRequest::fused(
                ConvShape::square(16, 28, 32, 3, 1, 1),
                TileKind::Winograd(WinogradTile::F2X3),
                iolb_core::Epilogue::ReluPool { k: 2 },
            ),
        ]
    }

    /// A two-device store with records, LRU stamps and a non-trivial
    /// clock — everything a `State` frame must carry bit-exactly.
    fn sample_store() -> ShardedStore {
        let mut store = ShardedStore::new();
        for (device, cost) in [("Tesla V100", 1.0 / 3.0), ("GTX 1080 Ti", 0.25)] {
            let workload = iolb_records::Workload::new(
                ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0),
                TileKind::Direct,
                device,
                96 * 1024,
            );
            let rec =
                iolb_records::TuningRecord::new(workload.clone(), sample_result().config, cost, 7)
                    .unwrap();
            store.insert(rec);
            store.touch(&workload.fingerprint());
        }
        store
    }

    fn sample_result() -> ServeResult {
        ServeResult {
            config: ScheduleConfig {
                x: 7,
                y: 14,
                z: 8,
                nxt: 7,
                nyt: 2,
                nzt: 4,
                sb_bytes: 16 * 1024,
                layout: Layout::Chw,
            },
            cost_ms: 1.0 / 3.0,
            source: ServeSource::Inline { cancelled_speculative: true },
            fresh_measurements: 12,
            cache_hits: 3,
            fused: false,
        }
    }

    #[test]
    fn requests_round_trip() {
        let device = DeviceSpec { smem_per_sm: 1234, ..DeviceSpec::v100() };
        for req in [
            Request::Submit { device: device.clone(), requests: sample_requests() },
            Request::Submit { device, requests: Vec::new() },
            Request::Wait { session: u64::MAX - 1 },
            Request::Sync,
            Request::Stats,
            Request::Pull,
            Request::Shutdown,
        ] {
            let payload = encode_request(&req);
            let back = decode_request(std::str::from_utf8(&payload).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let snapshot = ServiceSnapshot {
            stats: crate::service::ServiceStats { fresh_measurements: 42, ..Default::default() },
            queue_len: 3,
            budget_left: 17,
        };
        let telemetry = crate::telemetry::Telemetry::new();
        telemetry.incr("iolb_sessions_total", 5);
        telemetry.gauge("iolb_daemon_open_connections", 2);
        telemetry.observe("iolb_session_us", 1234);
        telemetry.observe("iolb_session_us", u64::MAX);
        for resp in [
            Response::Submitted { session: 7, unique: 3 },
            Response::Results { results: vec![Some(sample_result()), None] },
            Response::Results {
                results: vec![
                    Some(ServeResult {
                        source: ServeSource::Anchored { retune: true },
                        fresh_measurements: 0,
                        cache_hits: 0,
                        ..sample_result()
                    }),
                    Some(ServeResult {
                        source: ServeSource::Anchored { retune: false },
                        ..sample_result()
                    }),
                ],
            },
            Response::Results {
                results: vec![
                    Some(ServeResult { fused: true, ..sample_result() }),
                    Some(ServeResult { fused: true, cost_ms: 0.125, ..sample_result() }),
                ],
            },
            Response::Synced { persisted: true, total: 99 },
            Response::Stats { snapshot: Box::new(snapshot), metrics: telemetry.snapshot() },
            Response::Stats {
                snapshot: Box::new(ServiceSnapshot::default()),
                metrics: MetricsSnapshot::default(),
            },
            Response::State { store: Box::new(sample_store()) },
            Response::State { store: Box::new(ShardedStore::new()) },
            Response::Bye,
            Response::Error { message: "tab\there \"quoted\"".to_string() },
        ] {
            let payload = encode_response(&resp);
            let back = decode_response(std::str::from_utf8(&payload).unwrap()).unwrap();
            if let (Response::Results { results: a }, Response::Results { results: b }) =
                (&resp, &back)
            {
                let lhs = a[0].as_ref().unwrap();
                let rhs = b[0].as_ref().unwrap();
                assert_eq!(lhs.cost_ms.to_bits(), rhs.cost_ms.to_bits(), "cost lost bits");
            }
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn state_round_trip_preserves_records_stamps_and_clock() {
        let store = sample_store();
        let payload = encode_response(&Response::State { store: Box::new(store.clone()) });
        let Response::State { store: back } =
            decode_response(std::str::from_utf8(&payload).unwrap()).unwrap()
        else {
            panic!("state frame decoded to a different message");
        };
        assert_eq!(back.clock(), store.clock());
        assert_eq!(back.merged().to_jsonl(), store.merged().to_jsonl(), "records drifted");
        for (fp, stamp) in store.hit_stamps() {
            assert_eq!(back.last_hit(fp), stamp, "stamp of {fp} drifted");
        }
        // A state frame cut mid-record is a typed error, never a partial
        // store.
        let text = std::str::from_utf8(&payload).unwrap();
        let cut = text.lines().next().unwrap().len() + 1 + 10;
        assert!(matches!(decode_response(&text[..cut]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn framed_round_trip_over_a_buffer() {
        let req = Request::Submit { device: DeviceSpec::v100(), requests: sample_requests() };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        write_request(&mut buf, &Request::Shutdown).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_request(&mut cursor).unwrap(), Some(req));
        assert_eq!(read_request(&mut cursor).unwrap(), Some(Request::Shutdown));
        assert_eq!(read_request(&mut cursor).unwrap(), None, "clean end of stream");
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let mut full = Vec::new();
        write_request(&mut full, &Request::Stats).unwrap();
        for cut in 1..full.len() {
            let mut cursor = std::io::Cursor::new(full[..cut].to_vec());
            match read_request(&mut cursor) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut prefix = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        prefix.extend_from_slice(b"whatever");
        let mut cursor = std::io::Cursor::new(prefix);
        assert!(matches!(
            read_request(&mut cursor),
            Err(WireError::Oversized { len }) if len == MAX_FRAME_BYTES + 1
        ));
        // And the writer refuses to emit one.
        let huge = vec![b'x'; MAX_FRAME_BYTES + 1];
        assert!(matches!(write_frame(&mut Vec::new(), &huge), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn foreign_versions_are_rejected() {
        let payload = format!("{{\"v\":{},\"type\":\"stats\"}}", WIRE_VERSION + 1);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::ForeignVersion { got }) if got == u64::from(WIRE_VERSION) + 1
        ));
        assert!(matches!(decode_response(&payload), Err(WireError::ForeignVersion { .. })));
    }

    #[test]
    fn unknown_devices_and_sources_are_rejected() {
        let mut payload = String::from_utf8(encode_request(&Request::Submit {
            device: DeviceSpec::v100(),
            requests: Vec::new(),
        }))
        .unwrap();
        payload = payload.replace("Tesla V100", "TPU v9");
        assert!(matches!(decode_request(&payload), Err(WireError::Malformed(_))));
        let resp = String::from_utf8(encode_response(&Response::Results {
            results: vec![Some(sample_result())],
        }))
        .unwrap();
        let resp = resp.replace("\"src\":\"inline\"", "\"src\":\"teleported\"");
        assert!(matches!(decode_response(&resp), Err(WireError::Malformed(_))));
    }
}
