//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! A. **Cost model** — the guided walk with the GBT model vs the same walk
//!    model-free (pure random walk).
//! B. **Pruned domain** — the same searcher over the pruned vs full space.
//! C. **Warm start** — walker seeded at the analytic optimality-condition
//!    tile vs cold start.
//! D. **Eviction policy** — Belady vs LRU pebbling I/O on conv DAGs (the
//!    heuristic upper bounds in the theory validation).
//! E. **Optimality condition** — the analytic tile vs the best
//!    condition-violating tile at the same budget (why `xy = Rz` matters).

use iolb_autotune::engine::{tune, TuneParams};
use iolb_autotune::search::walk::ParallelRandomWalk;
use iolb_autotune::{ConfigSpace, GbtCostModel, Measurer, NoModel};
use iolb_bench::banner;
use iolb_cnn::inference::fast_config;
use iolb_core::optimality::{feasible_tiles, TileKind};
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_pebble::conv_dag::direct_conv_dag;
use iolb_pebble::{pebble_topological, Eviction};
use iolb_tensor::layout::Layout;

fn main() {
    banner("Ablations", "one experiment per DESIGN.md design decision");
    let device = DeviceSpec::v100();
    let shape = ConvShape::square(96, 27, 256, 5, 1, 2); // AlexNet conv2
    let kind = TileKind::Direct;
    let budget = 120;
    let seeds: [u64; 3] = [5, 55, 555];

    let run = |pruned: bool, model_on: bool, warm: bool, seed: u64| -> f64 {
        let space = ConfigSpace::new(shape, kind, device.smem_per_sm, pruned);
        let measurer = Measurer::new(device.clone(), shape, kind);
        let warm_seeds = if warm {
            fast_config(&shape, kind, &device).into_iter().collect()
        } else {
            Vec::new()
        };
        let mut searcher = ParallelRandomWalk::with_seeds(warm_seeds);
        let params = TuneParams { max_measurements: budget, batch: 8, patience: budget, seed };
        let r = if model_on {
            let mut model = GbtCostModel::default();
            tune(&space, &measurer, &mut model, &mut searcher, params)
        } else {
            let mut model = NoModel;
            tune(&space, &measurer, &mut model, &mut searcher, params)
        };
        r.map_or(f64::INFINITY, |r| r.best_ms)
    };
    let mean = |f: &dyn Fn(u64) -> f64| -> f64 {
        seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64
    };

    println!("\n[A] cost model (pruned space, warm start, mean of 3 seeds):");
    let with_model = mean(&|s| run(true, true, true, s));
    let without = mean(&|s| run(true, false, true, s));
    println!("  GBT-guided walk: {with_model:.5} ms");
    println!(
        "  model-free walk: {without:.5} ms   (model gain {:.1}%)",
        (without / with_model - 1.0) * 100.0
    );

    println!("\n[B] searching domain (GBT model, warm start):");
    let pruned = mean(&|s| run(true, true, true, s));
    let full = mean(&|s| run(false, true, true, s));
    println!("  pruned domain: {pruned:.5} ms");
    println!(
        "  full domain:   {full:.5} ms   (pruning gain {:.1}%)",
        (full / pruned - 1.0) * 100.0
    );

    println!("\n[C] warm start (GBT model, pruned space):");
    let warm = mean(&|s| run(true, true, true, s));
    let cold = mean(&|s| run(true, true, false, s));
    println!("  analytic warm start: {warm:.5} ms");
    println!(
        "  cold start:          {cold:.5} ms   (warm-start gain {:.1}%)",
        (cold / warm - 1.0) * 100.0
    );

    println!("\n[D] pebbling eviction policy (conv DAG, I/O of the schedule):");
    let small = ConvShape::new(3, 5, 5, 2, 3, 3, 1, 0);
    let dag = direct_conv_dag(&small);
    println!("  {:>4} {:>10} {:>10}", "S", "belady", "lru");
    for s in [16usize, 24, 48] {
        let b = pebble_topological(&dag, s, Eviction::Belady).io;
        let l = pebble_topological(&dag, s, Eviction::Lru).io;
        println!("  {s:>4} {b:>10} {l:>10}");
    }

    println!("\n[E] optimality condition, by on-chip volume class:");
    println!("  The condition xy = Rz balances input against weight traffic for a");
    println!("  *given* tile volume; it matters exactly where the schedule is");
    println!("  memory-bound. Sweeping volume classes makes the regime visible:");
    // A traffic-heavy layer (1x1 kernel, R = 1) on the bandwidth-poorest
    // device in the set.
    let mem_shape = ConvShape::new(512, 56, 56, 256, 1, 1, 1, 0);
    let mem_device = DeviceSpec::titan_x();
    let measurer = Measurer::new(mem_device, mem_shape, kind);
    let r = kind.reuse(&mem_shape);
    let best_split = |n: usize, cap: usize| -> usize {
        iolb_core::optimality::divisors(n).into_iter().rfind(|&d| d <= cap).unwrap_or(1)
    };
    println!("  {:<14} {:>14} {:>14} {:>10}", "volume class", "near (ms)", "far (ms)", "advantage");
    for (lo, hi) in [(128usize, 512usize), (512, 2048), (2048, 8192)] {
        let mut best_on: Option<(ScheduleConfig, f64)> = None;
        let mut best_off: Option<(ScheduleConfig, f64)> = None;
        for t in feasible_tiles(&mem_shape, kind, hi as f64) {
            if t.volume() < lo || t.volume() >= hi {
                continue;
            }
            let dev = {
                let (lhs, rhs) = ((t.x * t.y) as f64, r * t.z as f64);
                (lhs - rhs).abs() / lhs.max(rhs)
            };
            let nxt = best_split(t.x, 16);
            let nyt = best_split(t.y, 16);
            let nzt = best_split(t.z, (512 / (nxt * nyt)).max(1));
            let cfg = ScheduleConfig {
                x: t.x,
                y: t.y,
                z: t.z,
                nxt,
                nyt,
                nzt,
                sb_bytes: 32 * 1024,
                layout: Layout::Chw,
            };
            let Some(ms) = measurer.measure_ms(&cfg) else { continue };
            let slot = if dev < 0.3 {
                &mut best_on
            } else if dev > 0.7 {
                &mut best_off
            } else {
                continue;
            };
            if slot.as_ref().is_none_or(|&(_, b)| ms < b) {
                *slot = Some((cfg, ms));
            }
        }
        if let (Some((_, m1)), Some((_, m2))) = (best_on, best_off) {
            println!("  [{lo:>5},{hi:>5})  {m1:>14.5} {m2:>14.5} {:>9.2}x", m2 / m1);
        }
    }
}
