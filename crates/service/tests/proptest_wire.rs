//! Property tests for the daemon wire codec (mirroring the JSONL
//! corruption-tolerance tests in `iolb-records`): whatever bytes arrive
//! on the socket, the decoder returns a typed [`WireError`] — it never
//! panics, never fabricates a message, and never reads past the frame
//! cap.

use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_service::wire::{
    self, read_request, read_response, Request, Response, WireError, MAX_FRAME_BYTES, WIRE_VERSION,
};
use iolb_service::{
    HistogramSnapshot, LatencyHistogram, MetricsSnapshot, ServiceSnapshot, ServiceStats,
    ShardedStore, TuneRequest, NUM_BUCKETS,
};
use iolb_tensor::layout::Layout;
use proptest::prelude::*;

/// A valid framed Submit built from drawn layer coordinates.
fn framed_submit(draws: &[(u32, u32)]) -> (Request, Vec<u8>) {
    let requests: Vec<TuneRequest> = draws
        .iter()
        .map(|&(cin_pow, cout_pow)| {
            TuneRequest::bare(
                ConvShape::new(1 << (cin_pow % 5), 14, 14, 1 << (cout_pow % 5), 1, 1, 1, 0),
                TileKind::Direct,
            )
        })
        .collect();
    let request = Request::Submit { device: DeviceSpec::v100(), requests };
    let mut frame = Vec::new();
    wire::write_request(&mut frame, &request).expect("encode valid request");
    (request, frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup through both decoders and the framed reader:
    /// typed errors only, no panics, no fabricated messages.
    #[test]
    fn arbitrary_bytes_never_panic_the_codec(
        data in prop::collection::vec(0u32..256, 0..160),
    ) {
        let bytes: Vec<u8> = data.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = wire::decode_request(&text);
        let _ = wire::decode_response(&text);
        let mut cursor = std::io::Cursor::new(bytes);
        // The byte soup is its own framing: whatever the first 4 bytes
        // claim, the reader must return (Ok or typed Err), not panic or
        // hang.
        let _ = read_request(&mut cursor);
        let mut cursor = std::io::Cursor::new(text.into_bytes());
        let _ = read_response(&mut cursor);
    }

    /// Every strict prefix of a valid frame is rejected as truncated
    /// (or is the clean empty stream), and never decodes to a message.
    #[test]
    fn truncated_frames_are_rejected_without_panicking(
        draws in prop::collection::vec((0u32..5, 0u32..5), 0..6),
        cut_seed in 0usize..10_000,
    ) {
        let (_, frame) = framed_submit(&draws);
        let cut = cut_seed % frame.len();
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_request(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty stream is a clean EOF"),
            Ok(Some(msg)) => prop_assert!(false, "truncated frame decoded to {msg:?}"),
            Err(WireError::Truncated { expected, got }) => prop_assert!(got < expected),
            Err(other) => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
        // A response reader on the same prefix: closed or truncated,
        // never a fabricated response.
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_response(&mut cursor) {
            Err(WireError::ConnectionClosed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { .. }) => prop_assert!(cut > 0),
            Err(WireError::Malformed(_)) | Err(WireError::ForeignVersion { .. }) => {
                // A request payload is not a response: also acceptable
                // once the whole frame arrived — but a *strict* prefix
                // can never parse that far.
                prop_assert!(false, "prefix decoded past the frame layer");
            }
            other => prop_assert!(false, "expected a typed error, got {other:?}"),
        }
    }

    /// Length prefixes above the cap are rejected before any payload
    /// allocation, whatever the claimed size.
    #[test]
    fn oversized_payloads_are_rejected(len_over in 1usize..(u32::MAX as usize - MAX_FRAME_BYTES)) {
        let len = MAX_FRAME_BYTES + len_over;
        let mut stream = (len as u32).to_be_bytes().to_vec();
        stream.extend_from_slice(b"ignored");
        let mut cursor = std::io::Cursor::new(stream);
        match read_request(&mut cursor) {
            Err(WireError::Oversized { len: got }) => prop_assert_eq!(got, len),
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Unknown message versions are rejected whole, with the version
    /// reported — obsolete ones (version-1 peers predate Pull/State)
    /// just like future ones.
    #[test]
    fn foreign_versions_are_rejected(
        version in prop_oneof![
            0u64..u64::from(WIRE_VERSION),
            (u64::from(WIRE_VERSION) + 1)..1_000_000,
        ],
    ) {
        let payload = format!("{{\"v\":{version},\"type\":\"sync\"}}");
        match wire::decode_request(&payload) {
            Err(WireError::ForeignVersion { got }) => prop_assert_eq!(got, version),
            other => prop_assert!(false, "expected ForeignVersion, got {other:?}"),
        }
        match wire::decode_response(&payload) {
            Err(WireError::ForeignVersion { got }) => prop_assert_eq!(got, version),
            other => prop_assert!(false, "expected ForeignVersion, got {other:?}"),
        }
    }

    /// Valid submits round-trip exactly through the framed reader.
    #[test]
    fn valid_submits_round_trip(draws in prop::collection::vec((0u32..5, 0u32..5), 0..8)) {
        let (request, frame) = framed_submit(&draws);
        let mut cursor = std::io::Cursor::new(frame);
        prop_assert_eq!(read_request(&mut cursor).unwrap(), Some(request));
    }

    /// `State` frames — the anti-entropy payload — round-trip an
    /// arbitrary store exactly (records, LRU stamps, clock), and every
    /// strict prefix of the frame is rejected at the framing layer,
    /// never decoded into a partial store.
    #[test]
    fn state_frames_round_trip(
        draws in prop::collection::vec((0u32..5, 0u32..3, 1u32..50, 0u32..4), 0..8),
        cut_seed in 0usize..10_000,
    ) {
        let mut store = ShardedStore::new();
        for &(cin_pow, dev, cost_scale, touches) in &draws {
            let device = ["Tesla V100", "GTX 1080 Ti", "Jetson AGX"][dev as usize];
            let workload = iolb_records::Workload::new(
                ConvShape::new(1 << (cin_pow % 5), 14, 14, 16, 1, 1, 1, 0),
                TileKind::Direct,
                device,
                96 * 1024,
            );
            let config = ScheduleConfig {
                x: 7, y: 7, z: 1 << (cin_pow % 5),
                nxt: 1, nyt: 1, nzt: 1,
                sb_bytes: 16 * 1024,
                layout: Layout::Chw,
            };
            let fingerprint = workload.fingerprint();
            store.insert(
                iolb_records::TuningRecord::new(workload, config, f64::from(cost_scale) / 3.0, 7)
                    .expect("valid record"),
            );
            for _ in 0..touches {
                store.touch(&fingerprint);
            }
        }
        let response = Response::State { store: Box::new(store.clone()) };
        let mut frame = Vec::new();
        wire::write_response(&mut frame, &response).expect("encode state");
        let mut cursor = std::io::Cursor::new(frame.clone());
        match read_response(&mut cursor).expect("read state back") {
            Response::State { store: got } => prop_assert_eq!(*got, store),
            other => prop_assert!(false, "expected State, got {other:?}"),
        }
        let cut = cut_seed % frame.len();
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_response(&mut cursor) {
            Err(WireError::ConnectionClosed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { expected, got }) => prop_assert!(got < expected),
            other => prop_assert!(false, "expected a framing error, got {other:?}"),
        }
    }

    /// v3 `Stats` frames round-trip an arbitrary metrics registry —
    /// counters, gauges, and full histogram bucket vectors — alongside
    /// the service snapshot, exactly. This pins the acceptance bar that
    /// histogram readouts fetched over the wire equal the in-process
    /// registry.
    #[test]
    fn stats_frames_round_trip(
        counters in prop::collection::vec((0u32..26, 0u64..1_000_000_000), 0..6),
        gauges in prop::collection::vec((0u32..26, 0u64..1_000_000_000), 0..4),
        histograms in prop::collection::vec(
            (0u32..26, prop::collection::vec(0u64..1_000_000, NUM_BUCKETS)),
            0..4,
        ),
        fresh in 0usize..1_000_000,
        queue_len in 0usize..10_000,
    ) {
        // Distinct sorted names, as a real registry snapshot yields.
        let named = |draws: &[(u32, u64)]| -> Vec<(String, u64)> {
            let mut out: Vec<(String, u64)> = draws
                .iter()
                .map(|&(n, v)| (format!("iolb_metric_{:02}", n % 26), v))
                .collect();
            out.sort();
            out.dedup_by(|a, b| a.0 == b.0);
            out
        };
        let mut hists: Vec<HistogramSnapshot> = histograms
            .iter()
            .map(|(n, buckets)| HistogramSnapshot {
                name: format!("iolb_hist_{:02}_us", n % 26),
                histogram: LatencyHistogram::from_parts(
                    buckets.iter().sum(),
                    buckets,
                ).expect("fixed arity"),
            })
            .collect();
        hists.sort_by(|a, b| a.name.cmp(&b.name));
        hists.dedup_by(|a, b| a.name == b.name);
        let metrics = MetricsSnapshot {
            counters: named(&counters),
            gauges: named(&gauges),
            histograms: hists,
        };
        let snapshot = ServiceSnapshot {
            stats: ServiceStats { fresh_measurements: fresh, ..Default::default() },
            queue_len,
            budget_left: queue_len / 2,
        };
        let response = Response::Stats {
            snapshot: Box::new(snapshot),
            metrics: metrics.clone(),
        };
        let mut frame = Vec::new();
        wire::write_response(&mut frame, &response).expect("encode stats");
        let mut cursor = std::io::Cursor::new(frame);
        match read_response(&mut cursor).expect("read stats back") {
            Response::Stats { snapshot: got_snap, metrics: got_metrics } => {
                prop_assert_eq!(*got_snap, snapshot);
                prop_assert_eq!(got_metrics, metrics);
            }
            other => prop_assert!(false, "expected Stats, got {other:?}"),
        }
    }
}

/// Previous protocol revisions are rejected whole by both sides —
/// a v2 peer (pre-histogram `Stats`), a v3 peer (pre-anchor serve
/// source) or a v4 peer (pre-fusion: no `epi` request field, no `fused`
/// result flag) must get a clean [`WireError::ForeignVersion`], not a
/// partially-understood message, from the request decoder and the
/// response decoder alike.
#[test]
fn stale_wire_versions_are_rejected_by_both_decoders() {
    assert_eq!(WIRE_VERSION, 5, "update this pin when the protocol rolls");
    for stale in [2u64, 3, 4] {
        for kind in ["sync", "stats", "shutdown"] {
            let payload = format!("{{\"v\":{stale},\"type\":\"{kind}\"}}");
            match wire::decode_request(&payload) {
                Err(WireError::ForeignVersion { got }) if got == stale => {}
                other => panic!("request decoder: expected ForeignVersion({stale}), got {other:?}"),
            }
            match wire::decode_response(&payload) {
                Err(WireError::ForeignVersion { got }) if got == stale => {}
                other => {
                    panic!("response decoder: expected ForeignVersion({stale}), got {other:?}")
                }
            }
        }
    }
}
