//! Dense 4-D tensors (batch x channel x height x width) backed by a single
//! `Vec<f32>`, with selectable in-image layout.

use crate::layout::Layout;
use rand::Rng;

/// A dense batched image tensor.
///
/// The batch axis is always outermost; the per-image axis order is governed
/// by [`Layout`]. Weights use the same container with `batch = C_out`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    data: Vec<f32>,
    /// Batch size `N` (or `C_out` for weight tensors).
    pub n: usize,
    /// Channels per image.
    pub c: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// In-image axis order.
    pub layout: Layout,
}

impl Tensor4 {
    /// Zero-filled tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::zeros_with_layout(n, c, h, w, Layout::Chw)
    }

    /// Zero-filled tensor with an explicit layout.
    pub fn zeros_with_layout(n: usize, c: usize, h: usize, w: usize, layout: Layout) -> Self {
        assert!(n > 0 && c > 0 && h > 0 && w > 0, "tensor dims must be positive");
        Self { data: vec![0.0; n * c * h * w], n, c, h, w, layout }
    }

    /// Tensor filled by `f(n, c, h, w)`.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Self::zeros(n, c, h, w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        *t.at_mut(ni, ci, hi, wi) = f(ni, ci, hi, wi);
                    }
                }
            }
        }
        t
    }

    /// Uniformly random tensor in `[-1, 1)` from the given RNG.
    pub fn random(n: usize, c: usize, h: usize, w: usize, rng: &mut impl Rng) -> Self {
        let mut t = Self::zeros(n, c, h, w);
        for v in &mut t.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no data (never: dims are positive).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n, "batch index {n} out of {}", self.n);
        n * self.c * self.h * self.w + self.layout.offset(c, h, w, self.c, self.h, self.w)
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.index(n, c, h, w);
        &mut self.data[i]
    }

    /// Element accessor with zero padding outside the spatial extent:
    /// `h`/`w` may be negative or past the edge.
    #[inline]
    pub fn at_padded(&self, n: usize, c: usize, h: isize, w: isize) -> f32 {
        if h < 0 || w < 0 || h as usize >= self.h || w as usize >= self.w {
            0.0
        } else {
            self.at(n, c, h as usize, w as usize)
        }
    }

    /// Raw storage (layout-ordered).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Re-materialises the tensor in a different layout (copying).
    pub fn to_layout(&self, layout: Layout) -> Tensor4 {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor4::zeros_with_layout(self.n, self.c, self.h, self.w, layout);
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        *out.at_mut(n, c, h, w) = self.at(n, c, h, w);
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute elementwise difference against another tensor of
    /// identical logical shape (layouts may differ).
    pub fn max_abs_diff(&self, other: &Tensor4) -> f32 {
        assert_eq!(
            (self.n, self.c, self.h, self.w),
            (other.n, other.c, other.h, other.w),
            "shape mismatch"
        );
        let mut worst = 0.0f32;
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        let d = (self.at(n, c, h, w) - other.at(n, c, h, w)).abs();
                        if d > worst {
                            worst = d;
                        }
                    }
                }
            }
        }
        worst
    }

    /// Relative-tolerance comparison suitable for f32 accumulation error:
    /// passes when `max|a-b| <= atol + rtol * max|a|`.
    pub fn approx_eq(&self, other: &Tensor4, rtol: f32, atol: f32) -> bool {
        let scale = self
            .data
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()))
            .max(other.data.iter().fold(0.0f32, |m, v| m.max(v.abs())));
        self.max_abs_diff(other) <= atol + rtol * scale
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_fn_and_at_roundtrip() {
        for layout in Layout::ALL {
            let mut t = Tensor4::zeros_with_layout(2, 3, 4, 5, layout);
            for n in 0..2 {
                for c in 0..3 {
                    for h in 0..4 {
                        for w in 0..5 {
                            *t.at_mut(n, c, h, w) = (n * 1000 + c * 100 + h * 10 + w) as f32;
                        }
                    }
                }
            }
            for n in 0..2 {
                for c in 0..3 {
                    for h in 0..4 {
                        for w in 0..5 {
                            assert_eq!(
                                t.at(n, c, h, w),
                                (n * 1000 + c * 100 + h * 10 + w) as f32,
                                "{layout} ({n},{c},{h},{w})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn layout_conversion_preserves_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor4::random(2, 3, 5, 4, &mut rng);
        for layout in Layout::ALL {
            let converted = t.to_layout(layout);
            assert_eq!(converted.layout, layout);
            assert_eq!(t.max_abs_diff(&converted), 0.0);
            // Round trip back.
            let back = converted.to_layout(t.layout);
            assert_eq!(back.as_slice(), t.as_slice());
        }
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let t = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| (h * 2 + w + 1) as f32);
        assert_eq!(t.at_padded(0, 0, -1, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 0, -3), 0.0);
        assert_eq!(t.at_padded(0, 0, 2, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn approx_eq_tolerates_small_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor4::random(1, 2, 3, 3, &mut rng);
        let mut b = a.clone();
        for v in b.as_mut_slice() {
            *v += 1e-6;
        }
        assert!(a.approx_eq(&b, 1e-4, 1e-5));
        *b.at_mut(0, 0, 0, 0) += 1.0;
        assert!(!a.approx_eq(&b, 1e-4, 1e-5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_rejects_shape_mismatch() {
        let a = Tensor4::zeros(1, 1, 2, 2);
        let b = Tensor4::zeros(1, 1, 2, 3);
        let _ = a.max_abs_diff(&b);
    }

    #[test]
    fn norm_of_unit_vector() {
        let mut t = Tensor4::zeros(1, 1, 1, 4);
        *t.at_mut(0, 0, 0, 0) = 3.0;
        *t.at_mut(0, 0, 0, 1) = 4.0;
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
