//! Property tests for the simulator: timing monotonicity, traffic
//! conservation, and occupancy consistency for arbitrary kernels.

use iolb_gpusim::{
    occupancy, simulate, BlockShape, BlockWork, DeviceSpec, KernelDesc, Limiter, TileAccess,
};
use proptest::prelude::*;

fn any_device() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::gtx1080ti()),
        Just(DeviceSpec::v100()),
        Just(DeviceSpec::titan_x()),
        Just(DeviceSpec::gfx906()),
    ]
}

fn launchable_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        1u64..2000,
        1u32..=8,  // threads = 32 * this
        0u32..=40, // smem KiB
        1u64..1_000_000,
        1u64..10_000,
    )
        .prop_map(|(grid, warps, smem_kib, flops, elems)| KernelDesc {
            name: "prop".into(),
            grid_blocks: grid,
            block: BlockShape { threads: warps * 32, smem_bytes: smem_kib * 1024 },
            work: BlockWork::new(flops).read(TileAccess::contiguous(elems)),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simulation always succeeds for launchable kernels and yields
    /// positive finite time with traffic exactly grid x per-block payload.
    #[test]
    fn simulation_is_total_and_exact(device in any_device(), kernel in launchable_kernel()) {
        let stats = simulate(&device, &kernel).unwrap();
        prop_assert!(stats.time_ms.is_finite() && stats.time_ms > 0.0);
        let per_block: u64 = kernel.work.reads.iter().map(|a| a.elems()).sum();
        prop_assert_eq!(stats.traffic.read_elems, per_block * kernel.grid_blocks);
        prop_assert!(stats.moved_bytes >= stats.traffic.useful_bytes());
        prop_assert!(stats.gflops <= device.peak_gflops() * 1.0001);
    }

    /// More work never takes less time (both flops and bytes).
    #[test]
    fn time_monotone_in_work(device in any_device(), kernel in launchable_kernel()) {
        let base = simulate(&device, &kernel).unwrap();
        let mut heavier = kernel.clone();
        heavier.work.flops *= 2;
        let h1 = simulate(&device, &heavier).unwrap();
        prop_assert!(h1.time_ms >= base.time_ms * 0.999);
        let mut wider = kernel.clone();
        wider.work = wider.work.read(TileAccess::contiguous(100_000));
        let h2 = simulate(&device, &wider).unwrap();
        prop_assert!(h2.time_ms >= base.time_ms * 0.999);
        let mut longer = kernel.clone();
        longer.grid_blocks *= 2;
        let h3 = simulate(&device, &longer).unwrap();
        prop_assert!(h3.time_ms >= base.time_ms * 0.999);
    }

    /// Occupancy respects every hardware limit.
    #[test]
    fn occupancy_within_limits(
        device in any_device(),
        warps in 1u32..=32,
        smem_kib in 0u32..=96,
    ) {
        let block = BlockShape { threads: warps * 32, smem_bytes: smem_kib * 1024 };
        let occ = occupancy(&device, block);
        if occ.limiter == Limiter::Infeasible {
            prop_assert!(
                block.threads > device.max_threads_per_block
                    || block.smem_bytes > device.max_smem_per_block
                    || occ.blocks_per_sm == 0
            );
        } else {
            prop_assert!(occ.blocks_per_sm >= 1);
            prop_assert!(occ.threads_per_sm <= device.max_threads_per_sm);
            prop_assert!(occ.blocks_per_sm <= device.max_blocks_per_sm);
            if block.smem_bytes > 0 {
                prop_assert!(occ.blocks_per_sm * block.smem_bytes <= device.smem_per_sm);
            }
            prop_assert!(occ.thread_occupancy > 0.0 && occ.thread_occupancy <= 1.0);
        }
    }

    /// Transaction counts are superadditive-safe: splitting an access into
    /// two never reduces the transaction count.
    #[test]
    fn split_access_never_cheaper(elems in 2u64..10_000, split in 1u64..9_999, tx_pow in 5u32..=7) {
        prop_assume!(split < elems);
        let tx = 2u64.pow(tx_pow);
        let whole = TileAccess::contiguous(elems).transactions(tx);
        let parts = TileAccess::contiguous(split).transactions(tx)
            + TileAccess::contiguous(elems - split).transactions(tx);
        prop_assert!(parts >= whole);
    }
}
