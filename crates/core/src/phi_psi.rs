//! Maximum vertex-generation functions `phi_j` / `psi_j` (paper §4.1.2).
//!
//! For the `j`-th sub-computation of a composite algorithm, `phi_j(k)` is
//! the maximum number of vertices of the sub-DAG `U_j` that can be generated
//! by a dominator budget of `k` vertices, and `psi_j(k)` the maximum number
//! of *output* vertices of `U_j` so generated (Eq. 4). The paper derives
//! closed-form upper bounds for each step of the direct convolution
//! (Lemmas 4.9, 4.10) and of the Winograd algorithm (Lemmas 4.15–4.18); we
//! encode those bounds here so the generic `T(S)` machinery in
//! [`crate::composite`] can maximise over budget splits.
//!
//! All bounds may depend on the fast-memory size `S` as well as the budget
//! `h` (several Winograd lemmas cap generation by `S`-dependent terms), so
//! the trait takes both.

use crate::shapes::WinogradTile;

/// A per-step pair of vertex-generation upper bounds.
///
/// Implementations must be non-decreasing in `h` for fixed `s`; the
/// composite maximisation relies on that monotonicity (it lets it assume the
/// total budget is fully spent).
pub trait StepBound {
    /// Upper bound on vertices of `U_j` generated from a budget of `h`.
    fn phi(&self, s: f64, h: f64) -> f64;
    /// Upper bound on output vertices of `U_j` generated from a budget of
    /// `h`. Defaults to `phi` (valid whenever the step has no internal
    /// vertices, e.g. pure product steps).
    fn psi(&self, s: f64, h: f64) -> f64 {
        self.phi(s, h)
    }
    /// Human-readable step name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Step 1 of the direct convolution: forming the elementwise products
/// between sliding input tensors and kernels.
///
/// Lemma 4.9: `phi_1(h) <= 2 S sqrt(R h)` where `R` is the input reuse
/// factor (Eq. 13), and `psi_1 = phi_1` because the product step has no
/// internal vertices.
#[derive(Debug, Clone, Copy)]
pub struct DirectProductStep {
    /// Input reuse factor `R`.
    pub reuse: f64,
}

impl StepBound for DirectProductStep {
    fn phi(&self, s: f64, h: f64) -> f64 {
        2.0 * s * (self.reuse * h).sqrt()
    }
    fn name(&self) -> &'static str {
        "direct/products"
    }
}

/// Step 2 of the direct convolution: the per-output summation trees.
///
/// Lemma 4.10: `phi_2(h) <= h - 1` — with `h` inputs available to summation
/// trees, at most `h - 1` internal/output vertices can be formed
/// (Lemma 4.7). We clamp at zero for `h < 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SummationTreeStep;

impl StepBound for SummationTreeStep {
    fn phi(&self, _s: f64, h: f64) -> f64 {
        (h - 1.0).max(0.0)
    }
    /// The summation step is the last step of the direct convolution, so its
    /// `psi` is never consumed; `min(h/2, h-1)` is still a valid bound (two
    /// inputs per produced output at tree roots, and outputs are a subset of
    /// the generated vertices so `psi <= phi` always holds for the true
    /// maxima — we clamp the bound accordingly).
    fn psi(&self, s: f64, h: f64) -> f64 {
        (h / 2.0).min(self.phi(s, h)).max(0.0)
    }
    fn name(&self) -> &'static str {
        "direct/summation-trees"
    }
}

/// Step 1 of the Winograd algorithm: input and kernel transforms
/// (`P_i = B^T I_i B`, `J_k = L K_k L^T`), realised as linear-combination
/// trees.
///
/// Lemma 4.15: `phi_1(h) <= 6 h (e+r-1)^4 / (e r)` and
/// `psi_1(h) <= 3 h (e+r-1)^2 / (e r)`.
#[derive(Debug, Clone, Copy)]
pub struct WinogradTransformStep {
    pub tile: WinogradTile,
}

impl StepBound for WinogradTransformStep {
    fn phi(&self, _s: f64, h: f64) -> f64 {
        let a = self.tile.a() as f64;
        6.0 * h * a.powi(4) / (self.tile.e as f64 * self.tile.r as f64)
    }
    fn psi(&self, _s: f64, h: f64) -> f64 {
        let a = self.tile.a() as f64;
        3.0 * h * a * a / (self.tile.e as f64 * self.tile.r as f64)
    }
    fn name(&self) -> &'static str {
        "winograd/transforms"
    }
}

/// Step 2 of the Winograd algorithm: elementwise multiplication
/// `Lambda = P ⊙ J`.
///
/// Lemma 4.16: `phi_2(h) <= h sqrt(h) + (e+r-1)^2 S sqrt(h) / e^2`, and
/// `psi_2 = phi_2` (no internal vertices).
#[derive(Debug, Clone, Copy)]
pub struct WinogradElementwiseStep {
    pub tile: WinogradTile,
}

impl StepBound for WinogradElementwiseStep {
    fn phi(&self, s: f64, h: f64) -> f64 {
        let a = self.tile.a() as f64;
        let e2 = (self.tile.e * self.tile.e) as f64;
        h * h.sqrt() + a * a * s * h.sqrt() / e2
    }
    fn name(&self) -> &'static str {
        "winograd/elementwise"
    }
}

/// Step 3 of the Winograd algorithm: channel-direction summation trees
/// producing `Pi_{i,k}`.
///
/// Lemma 4.17: `phi_3(h) <= h - 1`,
/// `psi_3(h) <= min(h/2, S (e+r-1)^2 / e^2)`. As outputs are a subset of the
/// step's vertices, we additionally clamp `psi <= phi`.
#[derive(Debug, Clone, Copy)]
pub struct WinogradChannelSumStep {
    pub tile: WinogradTile,
}

impl StepBound for WinogradChannelSumStep {
    fn phi(&self, _s: f64, h: f64) -> f64 {
        (h - 1.0).max(0.0)
    }
    fn psi(&self, s: f64, h: f64) -> f64 {
        let a = self.tile.a() as f64;
        let e2 = (self.tile.e * self.tile.e) as f64;
        (h / 2.0).min(s * a * a / e2).min(self.phi(s, h)).max(0.0)
    }
    fn name(&self) -> &'static str {
        "winograd/channel-sums"
    }
}

/// Step 4 of the Winograd algorithm: the output transform
/// (`A^T Pi A`), again linear-combination trees.
///
/// Lemma 4.18: `phi_4(h) <= min((2h - 1) e^2, (2(e+r-1)^2 - 1) S)`.
#[derive(Debug, Clone, Copy)]
pub struct WinogradOutputStep {
    pub tile: WinogradTile,
}

impl StepBound for WinogradOutputStep {
    fn phi(&self, s: f64, h: f64) -> f64 {
        let a = self.tile.a() as f64;
        let e2 = (self.tile.e * self.tile.e) as f64;
        ((2.0 * h - 1.0) * e2).min((2.0 * a * a - 1.0) * s).max(0.0)
    }
    fn name(&self) -> &'static str {
        "winograd/output-transform"
    }
}

/// The two-step bound sequence for the direct convolution
/// (`G = G_1 ∪ G_2`, Fig. 4).
pub fn direct_steps(reuse: f64) -> Vec<Box<dyn StepBound>> {
    vec![Box::new(DirectProductStep { reuse }), Box::new(SummationTreeStep)]
}

/// The four-step bound sequence for the Winograd algorithm (Fig. 5).
pub fn winograd_steps(tile: WinogradTile) -> Vec<Box<dyn StepBound>> {
    vec![
        Box::new(WinogradTransformStep { tile }),
        Box::new(WinogradElementwiseStep { tile }),
        Box::new(WinogradChannelSumStep { tile }),
        Box::new(WinogradOutputStep { tile }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_monotone(step: &dyn StepBound, s: f64) {
        let mut prev_phi = f64::NEG_INFINITY;
        let mut prev_psi = f64::NEG_INFINITY;
        for h in [0.0, 1.0, 2.0, 4.0, 8.0, 64.0, 1024.0, 1e6] {
            let p = step.phi(s, h);
            let q = step.psi(s, h);
            assert!(p >= prev_phi - 1e-9, "{} phi not monotone at h={h}", step.name());
            assert!(q >= prev_psi - 1e-9, "{} psi not monotone at h={h}", step.name());
            assert!(q <= p + 1e-9, "{} psi must not exceed phi at h={h}", step.name());
            prev_phi = p;
            prev_psi = q;
        }
    }

    #[test]
    fn all_steps_monotone_and_psi_le_phi() {
        let tile = WinogradTile::F2X3;
        let steps: Vec<Box<dyn StepBound>> = vec![
            Box::new(DirectProductStep { reuse: 9.0 }),
            Box::new(SummationTreeStep),
            Box::new(WinogradTransformStep { tile }),
            Box::new(WinogradElementwiseStep { tile }),
            Box::new(WinogradChannelSumStep { tile }),
            Box::new(WinogradOutputStep { tile }),
        ];
        for s in [16.0, 256.0, 4096.0] {
            for st in &steps {
                assert_monotone(st.as_ref(), s);
            }
        }
    }

    #[test]
    fn direct_product_matches_lemma_4_9() {
        let step = DirectProductStep { reuse: 9.0 };
        // phi_1(h) = 2 S sqrt(R h): S=100, h=4 => 2*100*sqrt(36) = 1200.
        assert!((step.phi(100.0, 4.0) - 1200.0).abs() < 1e-9);
        assert!((step.psi(100.0, 4.0) - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn summation_tree_matches_lemma_4_10() {
        let step = SummationTreeStep;
        assert_eq!(step.phi(1e9, 10.0), 9.0);
        assert_eq!(step.phi(1e9, 0.5), 0.0);
    }

    #[test]
    fn winograd_transform_matches_lemma_4_15() {
        let tile = WinogradTile::F2X3; // a = 4, e*r = 6
        let step = WinogradTransformStep { tile };
        // phi = 6 h a^4/(er) = 6*1*256/6 = 256.
        assert!((step.phi(0.0, 1.0) - 256.0).abs() < 1e-9);
        // psi = 3 h a^2/(er) = 3*16/6 = 8.
        assert!((step.psi(0.0, 1.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn winograd_elementwise_matches_lemma_4_16() {
        let tile = WinogradTile::F2X3; // a^2/e^2 = 16/4 = 4
        let step = WinogradElementwiseStep { tile };
        // phi = h^1.5 + 4 S sqrt(h); h=4, S=10 => 8 + 80 = 88.
        assert!((step.phi(10.0, 4.0) - 88.0).abs() < 1e-9);
    }

    #[test]
    fn winograd_channel_sum_caps_psi() {
        let tile = WinogradTile::F2X3;
        let step = WinogradChannelSumStep { tile };
        // psi = min(h/2, 4S). Small h: h/2 governs.
        assert!((step.psi(100.0, 10.0) - 5.0).abs() < 1e-9);
        // Large h: the S cap governs: 4*100 = 400.
        assert!((step.psi(100.0, 1e6) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn winograd_output_caps_by_s() {
        let tile = WinogradTile::F2X3; // e^2 = 4, (2a^2-1) = 31
        let step = WinogradOutputStep { tile };
        // Small h: (2h-1)e^2 = 4*(2*3-1) = 20.
        assert!((step.phi(1000.0, 3.0) - 20.0).abs() < 1e-9);
        // Large h: 31 S.
        assert!((step.phi(10.0, 1e9) - 310.0).abs() < 1e-9);
    }

    #[test]
    fn step_sequences_have_expected_arity() {
        assert_eq!(direct_steps(9.0).len(), 2);
        assert_eq!(winograd_steps(WinogradTile::F2X3).len(), 4);
    }
}
