//! Offline stand-in for the `criterion` crate: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be vendored. This harness actually runs and times
//! the benchmark bodies — a fixed warm-up, then `sample_size` timed
//! batches with an adaptive per-batch iteration count targeting ~20 ms —
//! and prints median/min/max per benchmark. No statistics engine, no
//! HTML reports, no regression baselines; `cargo bench --no-run` compile
//! coverage and a useful wall-clock signal are the goals.
//!
//! ```
//! use criterion::{black_box, BenchmarkId};
//!
//! // black_box defeats constant folding inside benchmark bodies.
//! assert_eq!(black_box(2 + 2), 4);
//! let _id = BenchmarkId::new("gemm", 64); // renders as "gemm/64"
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one parameterised benchmark (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Per-benchmark timing loop (mirrors `criterion::Bencher`).
pub struct Bencher {
    /// Timed batches to record.
    samples: usize,
    /// Collected batch means, ns per iteration.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording `samples` batch means.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call always; grow the batch until it costs ~1 ms
        // so cheap routines are timed in bulk.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                // Scale the batch toward ~20 ms per sample.
                let per_iter = elapsed.as_secs_f64() / batch as f64;
                let target = 0.02;
                batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                break;
            }
            batch *= 4;
        }
        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter_ns.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn report(name: &str, bencher: &Bencher) {
    let mut sorted = bencher.per_iter_ns.clone();
    if sorted.is_empty() {
        println!("{name:<48} (no samples — Bencher::iter never called)");
        return;
    }
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let fmt = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    println!("{name:<48} [{} {} {}]", fmt(sorted[0]), fmt(median), fmt(sorted[sorted.len() - 1]));
}

/// Top-level benchmark manager (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, per_iter_ns: Vec::new() };
        f(&mut bencher);
        report(&id, &bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A named group of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut bencher = Bencher { samples, per_iter_ns: Vec::new() };
        f(&mut bencher);
        report(&format!("{}/{label}", self.name), &bencher);
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_label(), f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Anything usable as a benchmark name: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Declares a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().sample_size(2).bench_function("count-calls", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0, "routine never ran");
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
            ran = true;
        });
        group.bench_function(format!("dyn-{}", 3), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(ran);
    }
}
