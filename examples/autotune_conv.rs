//! Auto-tune one convolution layer with the paper's engine and watch the
//! convergence curve.
//!
//! ```sh
//! cargo run --release --example autotune_conv
//! ```

use conv_iolb::autotune::engine::{tune, TuneParams};
use conv_iolb::autotune::search::walk::ParallelRandomWalk;
use conv_iolb::autotune::{ConfigSpace, GbtCostModel, Measurer};
use conv_iolb::cnn::inference::fast_config;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;

fn main() {
    let shape = ConvShape::square(96, 27, 256, 5, 1, 2); // AlexNet conv2
    let device = DeviceSpec::v100();
    println!("tuning {shape} on {}\n", device.name);

    let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
    println!("pruned searching domain: {} configurations", space.count());
    let full = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, false);
    println!("full (TVM-style) space:  {} configurations\n", full.count());

    let measurer = Measurer::new(device.clone(), shape, TileKind::Direct);
    let mut model = GbtCostModel::default();
    let seeds = fast_config(&shape, TileKind::Direct, &device).into_iter().collect();
    let mut searcher = ParallelRandomWalk::with_seeds(seeds);
    let params = TuneParams { max_measurements: 160, batch: 8, patience: 80, seed: 42 };

    let result = tune(&space, &measurer, &mut model, &mut searcher, params).expect("tunable layer");

    println!("{:>8} {:>12} {:>12}", "meas", "best ms", "best GF");
    let mut last = f64::INFINITY;
    for p in &result.curve {
        if p.best_ms < last {
            println!("{:>8} {:>12.5} {:>12.1}", p.measurement, p.best_ms, p.best_gflops);
            last = p.best_ms;
        }
    }
    println!(
        "\nbest: {} -> {:.5} ms ({:.1} GFLOP/s) after {} measurements",
        result.best, result.best_ms, result.best_gflops, result.measurements
    );

    // How good was the analytic (no-search) plan?
    if let Some(cfg) = fast_config(&shape, TileKind::Direct, &device) {
        if let Some(ms) = measurer.measure_ms(&cfg) {
            println!(
                "analytic optimality-condition plan: {cfg} -> {ms:.5} ms \
                 (tuning improved it {:.1}%)",
                (ms / result.best_ms - 1.0) * 100.0
            );
        }
    }
}
