//! Closed-form I/O lower-bound results for the **Winograd algorithm**
//! (paper §4.3) and the I/O volume of the paper's dataflow for it
//! (§5.3, Eqs. 22–23).

use crate::shapes::{ConvShape, WinogradTile};

/// Number of internal + output vertices in the Winograd DAG per Lemma 4.14
/// (leading form): `2 Wout Hout Cout Cin (e+r-1)^4 / e^2`, scaled by batch.
///
/// The count treats every `(tile, output-channel)` pair independently —
/// i.e. input transforms are counted per pair, matching the paper's proof
/// which notes "each e^2 output vertices are generated independently"
/// (re-computation of transforms is permitted by the model).
pub fn vertex_count_leading(shape: &ConvShape, tile: WinogradTile) -> f64 {
    let a = tile.a() as f64;
    2.0 * shape.output_elems() as f64 * shape.cin as f64 * a.powi(4) / (tile.e * tile.e) as f64
}

/// Exact vertex count obtained by summing the per-pair tree sizes from the
/// proof of Lemma 4.14:
///
/// * input transform `P_i`: `(2a^2 - 1) a^2 C_in` vertices,
/// * kernel transform `J_k`: `(2r^2 - 1) a^2 C_in` vertices,
/// * elementwise products: `a^2 C_in`,
/// * channel summation trees: `(C_in - 1) a^2`,
/// * output transform: `(2a^2 - 1) e^2`,
///
/// all times the number of `(tile, channel)` pairs
/// `ceil(Hout/e) * ceil(Wout/e) * Cout` (per image).
pub fn vertex_count_exact(shape: &ConvShape, tile: WinogradTile) -> u64 {
    let a2 = (tile.a() * tile.a()) as u64;
    let e2 = (tile.e * tile.e) as u64;
    let r2 = (tile.r * tile.r) as u64;
    let cin = shape.cin as u64;
    let p = (2 * a2 - 1) * a2 * cin;
    let j = (2 * r2 - 1) * a2 * cin;
    let mul = a2 * cin;
    let sum = (cin - 1) * a2;
    let out = (2 * a2 - 1) * e2;
    let tiles_h = shape.hout().div_ceil(tile.e) as u64;
    let tiles_w = shape.wout().div_ceil(tile.e) as u64;
    let pairs = tiles_h * tiles_w * shape.cout as u64 * shape.batch as u64;
    pairs * (p + j + mul + sum + out)
}

/// Closed-form `T(S)` of Lemma 4.19 (leading + second-order term):
/// `T(S) = 2 (e+r-1)^3/(e r) S sqrt(S) + 6 (e+r-1)^2/(e r) S`.
pub fn t_closed(tile: WinogradTile, s: f64) -> f64 {
    let a = tile.a() as f64;
    let er = (tile.e * tile.r) as f64;
    2.0 * a.powi(3) / er * s * s.sqrt() + 6.0 * a * a / er * s
}

/// Precise I/O lower bound following the proof of Theorem 4.20:
/// `Q >= S * ( 2 Wout Hout Cout Cin (e+r-1)^4 / (e^2 T(2S)) - 1 )`
/// using the closed-form `T` of Lemma 4.19 with argument `2S`.
pub fn io_lower_bound(shape: &ConvShape, tile: WinogradTile, s: f64) -> f64 {
    let v = vertex_count_leading(shape, tile);
    let t2s = t_closed(tile, 2.0 * s);
    (s * (v / t2s - 1.0)).max(0.0)
}

/// Headline asymptotic form of Theorem 4.20:
/// `Q = Omega( Wout Hout Cout Cin (e+r-1) r / (e sqrt(S)) )`.
pub fn io_lower_bound_leading(shape: &ConvShape, tile: WinogradTile, s: f64) -> f64 {
    let a = tile.a() as f64;
    shape.output_elems() as f64 * shape.cin as f64 * a * tile.r as f64 / (tile.e as f64 * s.sqrt())
}

/// Read I/O volume of the Winograd dataflow with an explicit output tile
/// `x * y * z` (Eq. 22):
///
/// ```text
/// Q_read ~= (Hout Wout Cout / (x y z)) * (x y C_in + z r^2 C_in)
/// ```
///
/// (`mu = 1` for Winograd, so `x' ~= x`, `y' ~= y`.)
pub fn dataflow_read_io(shape: &ConvShape, tile: WinogradTile, x: f64, y: f64, z: f64) -> f64 {
    let blocks = shape.output_elems() as f64 / (x * y * z);
    let r2 = (tile.r * tile.r) as f64;
    blocks * shape.cin as f64 * (x * y + z * r2)
}

/// Total I/O with explicit tiles: Eq. 22 plus one store per output.
pub fn dataflow_total_io(shape: &ConvShape, tile: WinogradTile, x: f64, y: f64, z: f64) -> f64 {
    dataflow_read_io(shape, tile, x, y, z) + shape.output_elems() as f64
}

/// Total I/O at the optimal tile choice (Eq. 23): with the on-chip budget
/// `2 (e+r-1)^2/e^2 * x y z ~= S/Np` (the two temporary arrays dominate)
/// and the optimality condition `x y = r^2 z`,
///
/// ```text
/// Q_WA ~= 2 Hout Wout Cout Cin r (e+r-1) / (e sqrt(S/Np)) + Hout Wout Cout
/// ```
pub fn dataflow_optimal_io(shape: &ConvShape, tile: WinogradTile, s: f64, np: f64) -> f64 {
    let out = shape.output_elems() as f64;
    let a = tile.a() as f64;
    2.0 * out * shape.cin as f64 * tile.r as f64 * a / (tile.e as f64 * (s / np).sqrt()) + out
}

/// On-chip memory consumed by the temporary arrays for a tile `x*y*z`
/// (§5.3): `2 (e+r-1)^2 / e^2 * x y z` elements.
pub fn onchip_budget(tile: WinogradTile, x: f64, y: f64, z: f64) -> f64 {
    let a = tile.a() as f64;
    2.0 * a * a / (tile.e * tile.e) as f64 * x * y * z
}

/// Optimality condition of §5.3: `x y = r^2 z` (equivalently `x y = R z`
/// with `R = r^2` since `mu = 1`). Returns relative deviation.
pub fn optimality_deviation(tile: WinogradTile, x: f64, y: f64, z: f64) -> f64 {
    let lhs = x * y;
    let rhs = (tile.r * tile.r) as f64 * z;
    (lhs - rhs).abs() / lhs.max(rhs)
}

/// Dataflow-to-lower-bound ratio (near-optimality figure of merit).
pub fn optimality_ratio(shape: &ConvShape, tile: WinogradTile, s: f64) -> f64 {
    dataflow_optimal_io(shape, tile, s, 1.0) / io_lower_bound(shape, tile, s).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::t_bound;
    use crate::phi_psi::winograd_steps;

    fn layer() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    #[test]
    fn leading_vertex_count_matches_lemma_4_14() {
        let s = layer();
        let tile = WinogradTile::F2X3;
        // 2 * (56*56*128) * 256 * 4^4 / 4
        let want = 2.0 * (56.0 * 56.0 * 128.0) * 256.0 * 256.0 / 4.0;
        assert!((vertex_count_leading(&s, tile) - want).abs() < 1.0);
    }

    #[test]
    fn exact_count_close_to_leading_for_divisible_shapes() {
        // Hout=Wout=56 divisible by e=2: exact and leading counts agree on
        // the dominant P-transform term; exact adds the J/mul/sum/out terms
        // so it must be >= leading's P-term share and within ~2x overall.
        let s = layer();
        let tile = WinogradTile::F2X3;
        let exact = vertex_count_exact(&s, tile) as f64;
        let leading = vertex_count_leading(&s, tile);
        assert!(exact > 0.9 * leading, "exact {exact} leading {leading}");
        assert!(exact < 2.0 * leading, "exact {exact} leading {leading}");
    }

    #[test]
    fn numeric_t_within_closed_t() {
        let tile = WinogradTile::F2X3;
        let steps = winograd_steps(tile);
        for s in [1024.0, 8192.0] {
            let numeric = t_bound(&steps, s).t;
            let closed = t_closed(tile, s);
            // Lemma 4.19 keeps only the two dominant terms of the Eq. 18
            // chain, so numeric and closed agree within a modest constant.
            assert!(numeric < 4.0 * closed, "S={s}: numeric {numeric} closed {closed}");
            assert!(numeric > 0.25 * closed, "S={s}: numeric {numeric} closed {closed}");
        }
    }

    #[test]
    fn lower_bound_scales_inverse_sqrt_s() {
        let shape = layer();
        let tile = WinogradTile::F2X3;
        let q1 = io_lower_bound(&shape, tile, 1024.0);
        let q4 = io_lower_bound(&shape, tile, 4096.0);
        assert!(q1 > 0.0 && q4 > 0.0);
        let ratio = q1 / q4;
        assert!((1.7..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn leading_form_tracks_precise_bound() {
        let shape = layer();
        let tile = WinogradTile::F2X3;
        for s in [1024.0, 8192.0] {
            let lead = io_lower_bound_leading(&shape, tile, s);
            let precise = io_lower_bound(&shape, tile, s);
            // The precise form evaluates T at 2S (Theorem 4.6), which costs
            // a factor 2*sqrt(2) on the S^1.5 leading term, plus the
            // +6a^2/(er)S second-order term; the Omega-form absorbs both.
            // Expected ratio therefore hovers around 2*sqrt(2) ~ 2.83.
            let rel = lead / precise;
            assert!((1.5..4.0).contains(&rel), "S={s}: lead {lead} precise {precise}");
        }
    }

    #[test]
    fn eq22_minimised_at_optimality_condition() {
        let shape = layer();
        let tile = WinogradTile::F2X3;
        let r2 = 9.0f64;
        let budget = 4096.0f64; // xyz product
        let z = (budget / r2).sqrt();
        let xy = r2 * z;
        let x = xy.sqrt();
        let best = dataflow_read_io(&shape, tile, x, x, z);
        for factor in [0.4, 0.7, 1.4, 2.5] {
            let z2 = z * factor;
            let xy2 = budget / z2;
            let x2 = xy2.sqrt();
            let q = dataflow_read_io(&shape, tile, x2, x2, z2);
            assert!(q >= best - 1e-6, "perturbation {factor} beat optimum");
        }
        assert!(optimality_deviation(tile, x, x, z) < 1e-9);
    }

    #[test]
    fn eq23_matches_eq22_at_optimum() {
        let shape = layer();
        let tile = WinogradTile::F2X3;
        let s = 16384.0;
        let np = 1.0;
        // Budget: 2 a^2/e^2 xyz = S/Np => xyz = S e^2/(2 a^2 Np).
        let a = tile.a() as f64;
        let xyz = s * (tile.e * tile.e) as f64 / (2.0 * a * a * np);
        let r2 = (tile.r * tile.r) as f64;
        let z = (xyz / r2).sqrt();
        let x = (r2 * z).sqrt();
        let via_tiles = dataflow_total_io(&shape, tile, x, x, z);
        let closed = dataflow_optimal_io(&shape, tile, s, np);
        // Eq. 23 is an "~=" in the paper: substituting the strict budget
        // 2a^2/e^2 xyz = S into Eq. 22 yields an extra sqrt(2) on the read
        // term, which Eq. 23 absorbs. Check the ratio is exactly that.
        let read_tiles = via_tiles - shape.output_elems() as f64;
        let read_closed = closed - shape.output_elems() as f64;
        let rel = read_tiles / read_closed;
        assert!(
            (rel - std::f64::consts::SQRT_2).abs() < 1e-9,
            "tiles {via_tiles} closed {closed} rel {rel}"
        );
        // And the stated budget really is what onchip_budget computes.
        assert!((onchip_budget(tile, x, x, z) - s).abs() / s < 1e-9);
    }

    #[test]
    fn dataflow_io_above_lower_bound() {
        for hw in [28usize, 56, 112] {
            let shape = ConvShape::square(256, hw, 128, 3, 1, 1);
            let tile = WinogradTile::F2X3;
            for s in [1024.0, 8192.0] {
                let q = dataflow_optimal_io(&shape, tile, s, 1.0);
                let lb = io_lower_bound(&shape, tile, s);
                assert!(q >= lb, "hw={hw} S={s}: dataflow {q} < bound {lb}");
            }
        }
    }

    #[test]
    fn both_dataflows_are_near_optimal_for_their_own_bounds() {
        // The paper compares each algorithm against its *own* lower bound
        // and baseline (Fig. 9 plots direct-vs-cuDNN-direct and
        // winograd-vs-cuDNN-winograd separately); it never claims one
        // algorithm's absolute I/O dominates the other's. What must hold:
        // each dataflow is within a small constant of its own bound.
        let shape = ConvShape::square(256, 112, 512, 3, 1, 1);
        let s = 4096.0;
        let wino_ratio = optimality_ratio(&shape, WinogradTile::F4X3, s);
        let direct_ratio = crate::direct::optimality_ratio(&shape, s);
        assert!((1.0..16.0).contains(&wino_ratio), "wino ratio {wino_ratio}");
        assert!((1.0..16.0).contains(&direct_ratio), "direct ratio {direct_ratio}");
    }

    #[test]
    fn larger_tile_reduces_dataflow_io() {
        // F(4x4,3x3) reuses each input patch across more outputs than
        // F(2x2,3x3): r(e+r-1)/e = 3*6/4 = 4.5 < 3*4/2 = 6.
        let shape = layer();
        let s = 4096.0;
        let q2 = dataflow_optimal_io(&shape, WinogradTile::F2X3, s, 1.0);
        let q4 = dataflow_optimal_io(&shape, WinogradTile::F4X3, s, 1.0);
        assert!(q4 < q2);
    }
}
