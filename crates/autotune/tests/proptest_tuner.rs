//! Property tests for the tuning machinery: GBT learning behaviour,
//! space soundness, and featurisation robustness over random shapes.

use iolb_autotune::features::{featurize, NUM_FEATURES};
use iolb_autotune::gbt::{Gbrt, GbrtParams};
use iolb_autotune::ConfigSpace;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_shape() -> impl Strategy<Value = ConvShape> {
    (
        prop_oneof![Just(1usize), Just(3), Just(16), Just(64), Just(96)],
        8usize..=64,
        prop_oneof![Just(16usize), Just(32), Just(96), Just(128)],
        prop_oneof![Just(1usize), Just(3), Just(5)],
        1usize..=2,
    )
        .prop_map(|(cin, hw, cout, k, stride)| ConvShape::square(cin, hw, cout, k, stride, k / 2))
        .prop_filter("valid", |s| s.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sampled configurations always belong to their space, and pruned
    /// samples belong to the full space too.
    #[test]
    fn sampling_sound(shape in random_shape(), seed in 0u64..1000) {
        let full = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, false);
        let pruned = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, true);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            if let Some(cfg) = pruned.sample(&mut rng, 256) {
                prop_assert!(pruned.contains(&cfg));
                prop_assert!(full.contains(&cfg), "pruned sample outside full space");
            }
            if let Some(cfg) = full.sample(&mut rng, 256) {
                prop_assert!(full.contains(&cfg));
            }
        }
    }

    /// Neighbour moves stay inside the space.
    #[test]
    fn neighbours_stay_inside(shape in random_shape(), seed in 0u64..1000) {
        let space = ConfigSpace::new(shape, TileKind::Direct, 96 * 1024, true);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(mut cfg) = space.sample(&mut rng, 256) {
            for _ in 0..32 {
                cfg = space.neighbor(&cfg, &mut rng);
                prop_assert!(space.contains(&cfg));
            }
        }
    }

    /// Feature vectors are finite with the declared arity for every
    /// sampled configuration, direct or Winograd.
    #[test]
    fn features_always_finite(shape in random_shape(), seed in 0u64..1000) {
        let kinds: Vec<TileKind> = if shape.supports_winograd(WinogradTile::F2X3) {
            vec![TileKind::Direct, TileKind::Winograd(WinogradTile::F2X3)]
        } else {
            vec![TileKind::Direct]
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in kinds {
            let space = ConfigSpace::new(shape, kind, 96 * 1024, false);
            if let Some(cfg) = space.sample(&mut rng, 256) {
                let f = featurize(&shape, kind, &cfg);
                prop_assert_eq!(f.len(), NUM_FEATURES);
                for v in &f {
                    prop_assert!(v.is_finite());
                }
            }
        }
    }

    /// GBT fits a noiseless linear function to low training error and
    /// interpolates between seen points sanely (predictions bounded by
    /// the target range).
    #[test]
    fn gbt_fits_linear_targets(seed in 0u64..1000, slope in 0.5f64..4.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..120).map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(-1.0..1.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| slope * r[0]).collect();
        let model = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut rng);
        let rmse = model.rmse(&rows, &targets);
        prop_assert!(rmse < slope, "rmse {rmse} too high for slope {slope}");
        let lo = targets.iter().cloned().fold(f64::MAX, f64::min);
        let hi = targets.iter().cloned().fold(f64::MIN, f64::max);
        let pred = model.predict(&[5.0, 0.0]);
        prop_assert!(pred >= lo - slope && pred <= hi + slope, "pred {pred} outside [{lo},{hi}]");
    }

    /// Boosted ensembles are deterministic given the RNG seed.
    #[test]
    fn gbt_deterministic(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..50).map(|i| ((i * i) % 17) as f64).collect();
        let m1 = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut StdRng::seed_from_u64(7));
        let m2 = Gbrt::fit(&rows, &targets, GbrtParams::default(), &mut StdRng::seed_from_u64(7));
        let probe = vec![rng.gen_range(0.0..50.0)];
        prop_assert_eq!(m1.predict(&probe), m2.predict(&probe));
    }
}
