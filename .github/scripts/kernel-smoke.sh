#!/usr/bin/env bash
# Compute-kernel smoke: run a small `tune-bench kernels` sweep (every
# timed shape is also diffed bit-for-bit between the scalar and vector
# paths, so a sweep that completes is a correctness run), then validate
# the emitted BENCH_kernels.json with `tune-cache check-bench` —
# schema, internal consistency (speedup vs. GFLOP/s ratio, schedule
# I/O >= lower bound), and the perf gate: the vector path must not
# lose to scalar on the largest GEMM. The caller's RAYON_NUM_THREADS
# is honored, so CI exercises both the pooled and the single-thread
# paths with the same script.
set -euo pipefail

TB=target/release/tune-bench
TC=target/release/tune-cache
OUT=$(mktemp /tmp/iolb-bench-kernels.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

# --threads 2 emits each timed GEMM/im2col shape at both 1 thread and
# 2 threads (v2 rows carry a "threads" field the validator requires).
"$TB" kernels --sizes 64,128 --networks alexnet --max-layers 2 --reps 2 --threads 2 -o "$OUT"

# The bench file must pass the schema/invariant/perf gate.
"$TC" check-bench "$OUT"

# And a tampered file must fail it (the gate itself is load-bearing):
# claim the vector path lost on the only GEMM row.
TAMPERED=$(mktemp /tmp/iolb-bench-kernels-bad.XXXXXX.json)
trap 'rm -f "$OUT" "$TAMPERED"' EXIT
{
  printf '%s\n' '{"schema":"iolb-bench-kernels","v":1,"sizes":"64","networks":"","reps":1,"threads":1,"sram_kib":32,"rows":1}'
  printf '%s\n' '{"row":"gemm","name":"gemm-64","algo":"blocked","shape":"64x64x64","gflop":0.000524288,"scalar_gflops":5.0,"vector_gflops":4.0,"speedup":0.8,"q_lower_bytes":0,"q_sched_bytes":500.0,"roofline_gap":0}'
} > "$TAMPERED"
if "$TC" check-bench "$TAMPERED" 2>/dev/null; then
  echo "check-bench accepted a vector-lost-to-scalar kernels file"
  exit 1
fi

echo "kernel smoke OK"
