//! # iolb-autotune — the I/O-lower-bound-guided auto-tuning engine
//!
//! Reproduction of the paper's §6: a learned-cost-model auto-tuner whose
//! searching domain is pruned by the optimality condition `xy = Rz`
//! derived from the I/O lower bounds.
//!
//! * [`space`] — the Table 1 configuration space, full (TVM-style) and
//!   pruned (ATE) variants; Table 2's space-size comparison comes from
//!   [`space::ConfigSpace::count`].
//! * [`features`] — configuration featurisation for the model.
//! * [`gbt`] — gradient-boosted regression trees, from scratch (the
//!   XGBoost stand-in).
//! * [`cost_model`] — the trainable cost-model abstraction.
//! * [`search`] — four strategies: random, simulated annealing, genetic
//!   (the TVM baselines) and the paper's parallel random walk.
//! * [`measure`] — the template-manager stand-in: lowers a configuration
//!   through `iolb-dataflow` and times it on `iolb-gpusim`.
//! * [`engine`] — the train → search → measure loop (Fig. 8) with the
//!   paper's convergence criterion, plus the [`engine::tune_with_store`]
//!   variant backed by the persistent `iolb-records` store (measurement
//!   cache, warm start, cross-layer transfer).
//! * [`plan`] — the shared analytic planning defaults: per-layer
//!   algorithm candidates, the no-search [`plan::fast_config`], and the
//!   canonical [`plan::tuner_setup`] every layer-level consumer builds
//!   its runs from.
//! * [`fusion`] — the analytic fusion gate: decides from the composite
//!   I/O lower bound and a device cost model whether a conv→epilogue
//!   chain is tuned fused or falls back to per-layer workloads, before
//!   any measurement is spent.
//!
//! ```
//! use iolb_autotune::plan;
//! use iolb_core::optimality::TileKind;
//! use iolb_core::shapes::ConvShape;
//! use iolb_gpusim::DeviceSpec;
//!
//! // A tiny deterministic tuning run: pruned space, GBT model, parallel
//! // random walk warm-seeded at the analytic optimality-condition config.
//! let shape = ConvShape::square(32, 14, 32, 3, 1, 1);
//! let mut s = plan::tuner_setup(&shape, TileKind::Direct, &DeviceSpec::v100(), 16, 7);
//! let out = iolb_autotune::tune(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params)
//!     .expect("feasible shape");
//! assert!(out.best_ms > 0.0 && out.measurements <= 16);
//! ```

#![allow(clippy::needless_range_loop)] // index loops read clearer in the tree learner
pub mod cost_model;
pub mod engine;
pub mod features;
pub mod fusion;
pub mod gbt;
pub mod measure;
pub mod plan;
pub mod search;
pub mod space;

pub use cost_model::{CostModel, GbtCostModel, NoModel};
pub use engine::{
    tune, tune_batch, tune_with_store, tune_with_store_mode, workload_for, BatchTuneOutcome,
    CurvePoint, StoreMode, StoreTuneResult, TuneParams, TuneResult,
};
pub use fusion::{fusion_gate, FusionDecision};
pub use measure::Measurer;
pub use plan::BatchRequest;
pub use search::{History, Searcher};
pub use space::ConfigSpace;
