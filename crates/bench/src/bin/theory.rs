//! Theory validation (supporting Theorems 4.6 / 4.12 / 4.20):
//!
//! 1. **Pebbling sandwich** — on tiny convolution DAGs, the analytic lower
//!    bound never exceeds the exact optimal pebbling `Q`, which never
//!    exceeds the heuristic schedule's `Q`.
//! 2. **1/sqrt(S) scaling** — the dataflow I/O and the lower bound both
//!    scale as `S^{-1/2}`.
//! 3. **Optimality condition** — sweeping `z` at a fixed on-chip budget
//!    shows Eq. 20's minimum at `xy = Rz`.

use iolb_bench::banner;
use iolb_core::shapes::ConvShape;
use iolb_core::{direct, winograd, WinogradTile};
use iolb_pebble::conv_dag::{direct_conv_dag, winograd_dag, WinogradDagMode};
use iolb_pebble::exact::min_io;
use iolb_pebble::{pebble_topological, Eviction};

fn main() {
    banner("Theory validation", "pebbling sandwich, 1/sqrt(S) scaling, optimality condition");

    // --- 1. Pebbling sandwich on tiny DAGs -----------------------------
    // At toy sizes the asymptotic Theorem 4.12 bound degenerates to 0 (the
    // "-S" slack swallows |V|), so we also print the compulsory-traffic
    // floor: every used input loads at least once (inputs cannot be
    // computed) and every output stores at least once.
    println!("\n[1] pebbling sandwich: max(Q_lower, compulsory) <= Q_exact <= Q_heuristic");
    println!(
        "{:<38} {:>4} {:>8} {:>11} {:>8} {:>12}",
        "conv", "S", "Q_lower", "compulsory", "Q_exact", "Q_heuristic"
    );
    // Shapes small enough for the exponential exact search (<= 20
    // vertices) with exact pebbling; larger ones use heuristics only.
    let tiny = ConvShape::new(1, 2, 2, 1, 2, 2, 1, 0); // 1 output, 8 inputs
    let dag = direct_conv_dag(&tiny);
    let compulsory = (dag.inputs().len() + dag.outputs().len()) as u64;
    for s in [5usize, 6, 8] {
        let lower = direct::io_lower_bound(&tiny, s as f64);
        let exact = min_io(&dag, s, 1 << 24);
        let heur = pebble_topological(&dag, s, Eviction::Belady).io;
        let exact_str = exact.map_or("-".to_string(), |q| q.to_string());
        println!(
            "{:<38} {s:>4} {lower:>8.1} {compulsory:>11} {exact_str:>8} {heur:>12}",
            format!("{tiny}")
        );
        if let Some(q) = exact {
            assert!(lower.max(compulsory as f64) <= q as f64 + 1e-9, "floor above exact!");
            assert!(q <= heur, "exact above heuristic!");
        }
    }
    // Heuristic-only sandwich on bigger small DAGs.
    println!("\n    heuristic-only (exact search infeasible):");
    for shape in [
        ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0),
        ConvShape::new(3, 5, 5, 2, 3, 3, 1, 0),
        ConvShape::new(2, 6, 6, 4, 3, 3, 2, 0),
    ] {
        let dag = direct_conv_dag(&shape);
        for s in [16usize, 32] {
            let lower = direct::io_lower_bound(&shape, s as f64);
            let heur = pebble_topological(&dag, s, Eviction::Belady).io;
            assert!(lower <= heur as f64, "{shape} S={s}: bound {lower} > heuristic {heur}");
            println!(
                "    {:<26} S={s:<3} Q_lower {lower:>8.1}  Q_heuristic {heur:>8}",
                format!("{shape}")
            );
        }
    }
    // Winograd DAG heuristic pebbling.
    println!("\n    winograd DAG (F(2,3), shared transforms):");
    let wshape = ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0);
    let wdag = winograd_dag(&wshape, WinogradTile::F2X3, WinogradDagMode::Shared);
    for s in [40usize, 64, 128] {
        let lower = winograd::io_lower_bound(&wshape, WinogradTile::F2X3, s as f64);
        let heur = pebble_topological(&wdag, s, Eviction::Belady).io;
        println!(
            "    {:<26} S={s:<3} Q_lower {lower:>8.1}  Q_heuristic {heur:>8}",
            format!("{wshape}")
        );
        assert!(lower <= heur as f64);
    }

    // --- 2. 1/sqrt(S) scaling ------------------------------------------
    println!("\n[2] 1/sqrt(S) scaling (ResNet-style 3x3 layer, Cin=256, 56x56, Cout=128)");
    let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
    println!(
        "{:>8} {:>14} {:>14} {:>16} {:>10}",
        "S", "Q_lower(dir)", "Q_flow(dir)", "Q_lower(wino)", "ratio"
    );
    let mut prev: Option<f64> = None;
    for s in [1024.0f64, 4096.0, 16384.0] {
        let lb = direct::io_lower_bound(&shape, s);
        let flow = direct::dataflow_optimal_io(&shape, s, 1.0);
        let wlb = winograd::io_lower_bound(&shape, WinogradTile::F2X3, s);
        println!("{s:>8.0} {lb:>14.3e} {flow:>14.3e} {wlb:>16.3e} {:>10.2}", flow / lb);
        if let Some(plb) = prev {
            // 4x S should halve the bound (1/sqrt scaling). Beyond S ~
            // 16K elements the "-S" slack bends the curve, so the sweep
            // stays in the asymptotic regime.
            let shrink = plb / lb;
            assert!((1.7..2.4).contains(&shrink), "not 1/sqrt(S): {shrink}");
        }
        prev = Some(lb);
    }

    // --- 3. Optimality condition sweep ---------------------------------
    println!("\n[3] Eq. 20 read volume vs z at fixed budget xyz = 4096 (R = 9)");
    println!("{:>8} {:>8} {:>14} {:>12}", "z", "xy", "Q_read", "xy/Rz");
    let budget = 4096.0f64;
    let r = shape.reuse_factor();
    let z_opt = (budget / r).sqrt();
    let mut best = f64::INFINITY;
    let mut best_z = 0.0;
    for mult in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let z = z_opt * mult;
        let xy = budget / z;
        let x = xy.sqrt();
        let q = direct::dataflow_read_io(&shape, x, x, z);
        if q < best {
            best = q;
            best_z = z;
        }
        println!("{z:>8.1} {xy:>8.1} {q:>14.4e} {:>12.2}", xy / (r * z));
    }
    assert!((best_z - z_opt).abs() < 1e-9, "minimum not at the optimality condition");
    println!("\nminimum at z = {best_z:.1} = sqrt(budget/R) — the condition xy = Rz holds.");
    println!("\nAll assertions passed.");
}
